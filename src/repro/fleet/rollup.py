"""Fleet-wide result aggregation.

One :class:`FleetReport` per run: the fleet-level serving report (the
shared SLO tracker already sees every request, so per-tenant rows come
straight from :class:`~repro.serving.slo.SLOTracker.report`), one
:class:`NodeReport` per GPU with the requests *attributed* to it
(completed there, or shed by its admission controller), and the
work-stealing ledger. Attribution follows the request, not the route:
a stolen request counts for the node that finished it.

When the fleet's observability hub is live, :func:`export_to_tracer`
retrospectively emits one Chrome-trace **process per node** — a
complete span per request served there plus queue-depth/load counter
tracks sampled at steal ticks — so ``flep obs``-style trace files show
the whole cluster side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import FleetError
from ..metrics.stats import percentiles
from ..serving.slo import RequestLog, ServingReport


@dataclass
class NodeReport:
    """One GPU's share of the fleet run."""

    node: int
    mode: str
    makespan_us: float = 0.0
    routed: int = 0
    completed: int = 0
    shed: int = 0
    delayed: int = 0
    stolen_in: int = 0
    stolen_out: int = 0
    peak_queue: int = 0
    p50_us: Optional[float] = None
    p95_us: Optional[float] = None
    p99_us: Optional[float] = None
    #: Attainment over this node's attributed SLO-carrying requests.
    attainment: Optional[float] = None
    goodput_rps: float = 0.0
    #: Preemption events and their total modeled overhead (FLEP nodes).
    preemptions: int = 0
    preempt_overhead_us: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return dict(self.__dict__)


@dataclass
class FleetReport:
    """The whole fleet run: per-tenant rows, per-node rows, steals."""

    horizon_us: float
    routing: str
    n_nodes: int
    serving: ServingReport
    nodes: List[NodeReport] = field(default_factory=list)
    #: (t_us, req_id, src, dst) per migration, in order.
    steals: List[Tuple[float, int, int, int]] = field(default_factory=list)
    p50_us: Optional[float] = None
    p95_us: Optional[float] = None
    p99_us: Optional[float] = None

    @property
    def fleet_attainment(self) -> Optional[float]:
        """Fraction of all SLO-carrying requests (sheds included) that
        completed within their SLO, across the whole fleet."""
        good = total = 0
        for row in self.serving.tenants:
            if row.attainment is None:
                continue
            total += row.requests
            good += round(row.attainment * row.requests)
        return good / total if total else None

    def node(self, index: int) -> NodeReport:
        for row in self.nodes:
            if row.node == index:
                return row
        raise FleetError(f"no node {index} in this report")

    def as_dict(self) -> Dict[str, object]:
        return {
            "horizon_us": self.horizon_us,
            "routing": self.routing,
            "n_nodes": self.n_nodes,
            "p50_us": self.p50_us,
            "p95_us": self.p95_us,
            "p99_us": self.p99_us,
            "fleet_attainment": self.fleet_attainment,
            "steals": len(self.steals),
            "serving": self.serving.as_dict(),
            "nodes": [n.as_dict() for n in self.nodes],
        }

    def format(self) -> str:
        def fmt_us(v: Optional[float]) -> str:
            return f"{v:.0f}" if v is not None else "-"

        def fmt_pct(v: Optional[float]) -> str:
            return f"{100.0 * v:.1f}%" if v is not None else "-"

        header = (
            f"{'node':>4s} {'mode':14s} {'routed':>6s} {'done':>6s} "
            f"{'shed':>5s} {'in':>4s} {'out':>4s} {'p99us':>8s} "
            f"{'attain':>7s} {'goodput':>8s} {'preempt':>7s}"
        )
        lines = [
            f"fleet: {self.n_nodes} nodes, routing={self.routing}, "
            f"{len(self.steals)} steals, "
            f"p99={fmt_us(self.p99_us)}us, "
            f"attainment={fmt_pct(self.fleet_attainment)}",
            header,
            "-" * len(header),
        ]
        for n in self.nodes:
            lines.append(
                f"{n.node:4d} {n.mode:14s} {n.routed:6d} {n.completed:6d} "
                f"{n.shed:5d} {n.stolen_in:4d} {n.stolen_out:4d} "
                f"{fmt_us(n.p99_us):>8s} {fmt_pct(n.attainment):>7s} "
                f"{n.goodput_rps:7.1f}/s {n.preemptions:7d}"
            )
        lines.append("")
        lines.append(self.serving.format())
        return "\n".join(lines)


def build_report(fleet) -> FleetReport:
    """Aggregate one finished :class:`~repro.fleet.dispatcher.FleetSystem`."""
    horizon_us = max(node.sim.now for node in fleet.nodes)
    serving = fleet.tracker.report(horizon_us=horizon_us)
    report = FleetReport(
        horizon_us=horizon_us,
        routing=fleet.config.routing,
        n_nodes=len(fleet.nodes),
        serving=serving,
        steals=list(fleet.steals),
    )
    logs: Dict[int, RequestLog] = {
        log.req_id: log for log in fleet.tracker.requests
    }
    all_lat = [
        log.latency_us for log in logs.values()
        if log.latency_us is not None
    ]
    if all_lat:
        report.p50_us, report.p95_us, report.p99_us = percentiles(all_lat)
    horizon_s = max(horizon_us, 1.0) / 1e6
    for node in fleet.nodes:
        row = NodeReport(
            node=node.index,
            mode=node.config.mode,
            makespan_us=node.sim.now,
            routed=node.stats.routed,
            completed=node.stats.completed,
            shed=node.stats.shed,
            delayed=node.stats.delayed,
            stolen_in=node.stats.stolen_in,
            stolen_out=node.stats.stolen_out,
            peak_queue=node.stats.peak_queue,
        )
        # Attribution: completions by the node that ran them, sheds by
        # the node whose admission controller dropped them.
        mine = [
            r for r in fleet.requests
            if (r.completed_node == node.index)
            or (r.state == "shed" and r.node == node.index)
        ]
        latencies = []
        good = slo_total = 0
        for r in mine:
            log = logs[r.req_id]
            if log.latency_us is not None:
                latencies.append(log.latency_us)
            if log.slo_us is not None:
                slo_total += 1
                if log.slo_met:
                    good += 1
        if latencies:
            row.p50_us, row.p95_us, row.p99_us = percentiles(latencies)
        if slo_total:
            row.attainment = good / slo_total
            row.goodput_rps = good / horizon_s
        else:
            row.goodput_rps = row.completed / horizon_s
        if node.system is not None:
            rt = node.system.runtime
            for inv in rt.invocations:
                if inv.record.preemptions:
                    row.preemptions += inv.record.preemptions
                    row.preempt_overhead_us += (
                        inv.record.preemptions * rt.preemption_overhead_us(inv)
                    )
        report.nodes.append(row)
    if fleet.obs.enabled:
        export_to_tracer(fleet, logs)
    return report


def export_to_tracer(fleet, logs: Dict[int, RequestLog]) -> None:
    """Emit per-node Chrome-trace processes into the fleet's obs hub.

    Retrospective (`tracer.complete` / `counter_at`): the per-node
    simulators have already drained, so every span is closed and every
    counter sample carries its original timestamp.
    """
    tracer = fleet.obs.tracer
    for req in fleet.requests:
        if req.completed_node is None:
            continue
        log = logs[req.req_id]
        if log.finished_us is None:
            continue
        tracer.complete(
            f"req#{req.req_id} {req.kernel}[{req.input_name}]",
            start_us=log.arrived_us,
            end_us=log.finished_us,
            cat="fleet",
            process=f"node:{req.completed_node}",
            track=req.tenant.priority,
            tenant=req.tenant.name,
            steals=req.steals,
        )
    for t_us, node, queue_len, load_us in fleet.load_samples:
        tracer.counter_at(
            "fleet_queue", t_us, process=f"node:{node}",
            queued=queue_len, load_us=load_us,
        )
