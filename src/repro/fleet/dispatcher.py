"""The cluster front-end: route, rebalance, inject faults, roll up.

:class:`FleetSystem` is the multi-GPU analogue of
:class:`~repro.serving.server.ServingSystem` and mirrors its API
(``add_trace`` / ``add_generator`` / ``submit_at`` / ``run``): tenants
send requests to one front door, a pluggable :mod:`routing <.routing>`
policy picks the node, each node (:mod:`.node`) runs its own
independently-clocked FLEP or MPS GPU, and the run ends in a
fleet-level :mod:`rollup <.rollup>`.

**Co-simulation.** Each node owns a private simulator, so the fleet is
N event loops that must agree on time whenever they interact. The
dispatcher runs a conservative protocol: it walks the global control
points in order — request arrivals, periodic work-stealing ticks, and
injected fault actions — and before acting at control point *t* it
advances **every** node's simulator to *t*. Routing, stealing and
faults therefore always observe node states at the decision time, and
because nothing else couples the nodes, whatever each simulator does
between control points cannot be invalidated later. Same seed, same
control points, same decisions: fleet runs are bit-reproducible —
*including* fault runs, which is what makes chaos testing replayable.

**Work stealing.** At each tick the rebalancer compares node loads and
migrates requests from the most- to the least-loaded node while the gap
exceeds ``steal_threshold_us`` and the move actually shrinks it. Only
*queued* requests move — a dispatched request belongs to its GPU (its
kernel state lives there) — and the steal API plus the fleet
conformance monitor (:mod:`repro.validate.fleet`) both enforce it.
Fenced nodes (draining, drained, down) never *receive* steals, but a
stalled or draining node's queue may still be stolen *from* — that is
the stealer rescuing work off a degraded node.

**Faults.** A :class:`~repro.fleet.faults.FaultPlan` expands to extra
control points. A ``crash`` reclaims the dead node's queued + held
requests and re-routes them through the active routing policy (no
re-admission — the fleet already accepted that work) while its
in-flight requests are terminal ``lost``; a ``drain`` fences routing
and stealing-in until the deadline sheds the leftovers (cause
``drain``); a ``stall`` pauses the node's dispatch pump; ``rejoin``
brings a crashed node back with a fresh backend. If a request finds
*no* routable node (total outage), it is ``lost`` at the front door —
never silently dropped. DESIGN.md §14 states the full invariants.

**Accounting.** One fleet-wide :class:`~repro.serving.slo.SLOTracker`
records every request (the ``flep_serving_*`` metric family therefore
reports fleet totals); tenant rate limits are enforced once at the
front door (per-node enforcement would multiply every budget by N); and
the dispatcher adds the ``flep_fleet_*`` family for routing, stealing,
per-node load, and fault outcomes (reroutes / losses / drain sheds).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import FleetError
from ..gpu.device import GPUDeviceSpec, device_from_spec, tesla_k40
from ..obs.recorder import NULL_OBS, Observability, get_global
from ..serving.admission import TokenBucket
from ..serving.loadgen import LoadGenerator, merge_traces
from ..serving.slo import SLOTracker
from ..serving.tenants import Tenant, TenantSet
from ..workloads.benchmarks import BenchmarkSuite, standard_suite
from ..workloads.synthetic import Arrival, ArrivalTrace
from .faults import FAULT_KINDS, FaultAction, FaultEvent, FaultPlan, expand_plan
from .node import FleetNode, NodeConfig, NodeRequest
from .routing import RoutingPolicy, make_router
from .rollup import FleetReport, build_report


@dataclass
class FleetConfig:
    """Knobs of the whole fleet."""

    #: Execution mode per node (one entry per GPU); a heterogeneous
    #: fleet mixes e.g. ``["mps", "flep-temporal", "flep-spatial", ...]``.
    node_modes: Sequence[str] = ("flep-spatial", "flep-spatial")
    #: Per-node device specs (``"k40"``, ``"p100@40"``, …; see
    #: :func:`repro.gpu.device.device_from_spec`), one per node.
    #: ``None`` = every node runs the fleet's reference device.
    node_devices: Optional[Sequence[str]] = None
    #: Routing policy name (see :data:`repro.fleet.routing.ROUTERS`).
    routing: str = "deadline"
    #: FLEP scheduling policy on each node.
    policy: str = "edf"
    #: Per-node admission override (``None`` = each mode's default).
    admission: Optional[bool] = None
    delay_headroom: float = 0.5
    oracle_model: bool = False
    seed: Optional[int] = None
    #: Per-node dispatch window (requests inside the backend at once).
    max_inflight: int = 4
    #: Work-stealing rebalancer on/off.
    steal: bool = True
    #: Simulated time between rebalance ticks (µs).
    steal_interval_us: float = 500.0
    #: Minimum hot/cold load gap before any migration happens (µs).
    steal_threshold_us: float = 200.0
    #: Migration budget per tick (keeps rebalancing incremental).
    max_steals_per_tick: int = 2
    #: Injected faults (``None``/empty plan = every node is immortal).
    faults: Optional[FaultPlan] = None
    #: Event-queue engine of every node's simulator
    #: (``heap`` | ``calendar``) — rollups are engine-independent.
    queue: str = "heap"

    def __post_init__(self):
        if not self.node_modes:
            raise FleetError("a fleet needs at least one node")
        if (
            self.node_devices is not None
            and len(self.node_devices) != len(self.node_modes)
        ):
            raise FleetError(
                f"node_devices names {len(self.node_devices)} device(s) "
                f"for {len(self.node_modes)} node(s)"
            )
        if self.steal_interval_us <= 0:
            raise FleetError("steal_interval_us must be positive")
        if self.steal_threshold_us < 0:
            raise FleetError("steal_threshold_us must be >= 0")
        if self.max_steals_per_tick < 1:
            raise FleetError("max_steals_per_tick must be >= 1")

    @property
    def n_nodes(self) -> int:
        return len(self.node_modes)


class FleetHook:
    """Observer interface for fleet-level events (monitors, metrics).

    The dispatcher and its nodes call these as things happen; the base
    class is all no-ops so hooks override only what they watch.
    """

    def on_route(self, req: NodeRequest, node: int) -> None:
        """``req`` was assigned to ``node`` by the routing policy."""

    def on_steal(self, req: NodeRequest, src: int, dst: int) -> None:
        """``req`` was migrated from node ``src`` to node ``dst``."""

    def on_dispatch(self, req: NodeRequest, node: int) -> None:
        """``req`` left the node queue and entered the backend runtime."""

    def on_resolve(self, req: NodeRequest, node: int) -> None:
        """``req`` reached a terminal state (done, shed, or lost) on
        ``node`` (``-1`` = lost at the front door: no routable node)."""

    def on_fault(self, event: FaultEvent, node: int) -> None:
        """Fault ``event`` was applied to ``node`` (fires after the
        node-level transition, so a rejoin hook sees the new backend)."""

    def on_reroute(self, req: NodeRequest, src: int, dst: int) -> None:
        """``req`` was reclaimed from crashed node ``src`` and re-routed
        to ``dst`` (fires mid-flight, like :meth:`on_steal`)."""

    def on_lost(self, req: NodeRequest, node: int) -> None:
        """``req`` died with crashed node ``node`` (or ``-1`` when no
        routable node existed to take it)."""

    def on_advance(self, now: float) -> None:
        """The dispatcher advanced every node to control point ``now``."""

    def finalize(self, fleet: "FleetSystem") -> None:
        """End-of-run checks after every node drained."""


class WorkStealer:
    """Hot→cold queue rebalancer (runs at dispatcher control points).

    At each tick: compare the most-loaded node owning stealable work
    with the least-loaded *routable* node; while the load gap exceeds
    the threshold *and* moving the hottest node's most-recent queue
    entry would shrink it, migrate that entry. The tail (not the head)
    moves because the head is next to dispatch where it is — migrating
    it would trade queue position for nothing. Fenced nodes (draining /
    drained / down) never receive work, but their queues may be stolen
    from — the stealer doubles as a rescue path off degraded nodes.
    """

    def __init__(self, threshold_us: float, max_per_tick: int):
        self.threshold_us = threshold_us
        self.max_per_tick = max_per_tick

    def rebalance(
        self, nodes: Sequence[FleetNode], on_steal=None
    ) -> List[Tuple[NodeRequest, int, int]]:
        """Perform up to ``max_per_tick`` migrations; return the moves.

        ``on_steal(req, src, dst)`` (if given) fires mid-migration —
        after the request left its source, before the destination
        re-queues it — which is the instant the steal-safety monitor
        can observe the request's detached (``routed``) state.
        """
        moves: List[Tuple[NodeRequest, int, int]] = []
        if len(nodes) < 2:
            return moves
        while len(moves) < self.max_per_tick:
            loads = [n.load_us() for n in nodes]
            # hottest node that actually has queued (stealable) work
            candidates = [i for i in range(len(nodes)) if nodes[i].queue]
            # only routable nodes may receive migrated work
            sinks = [
                i for i in range(len(nodes))
                if getattr(nodes[i], "routable", True)
            ]
            if not candidates or not sinks:
                break
            src = max(candidates, key=lambda i: (loads[i], -i))
            dst = min(sinks, key=lambda i: (loads[i], i))
            gap = loads[src] - loads[dst]
            if src == dst or gap <= self.threshold_us:
                break
            req = nodes[src].peek_tail()
            if req is None or req.predicted_us >= gap:
                break  # the move would overshoot: leave it be
            nodes[src].take(req)
            if on_steal is not None:
                on_steal(req, src, dst)
            nodes[dst].accept_stolen(req)
            moves.append((req, src, dst))
        return moves


class FleetSystem:
    """One multi-GPU serving run: route → execute → steal → roll up."""

    def __init__(
        self,
        tenants: Union[TenantSet, List[Tenant]],
        config: Optional[FleetConfig] = None,
        device: Optional[GPUDeviceSpec] = None,
        suite: Optional[BenchmarkSuite] = None,
        observability: Union[bool, Observability, None] = None,
    ):
        self.tenants = (
            tenants if isinstance(tenants, TenantSet) else TenantSet(tenants)
        )
        self.config = config or FleetConfig()
        #: fleet time: the last control point every node was advanced to
        self._now = 0.0
        if isinstance(observability, Observability):
            self.obs = observability
        elif observability:
            self.obs = Observability(clock=lambda: self._now)
        else:
            self.obs = get_global() or NULL_OBS
        if self.obs.enabled:
            self.obs.bind_clock(lambda: self._now)
        # The reference device + calibrated suite: routing and admission
        # budget every request against this one predictor, whatever
        # hardware the request lands on (a fleet-canonical cost).
        self.device = device or tesla_k40()
        self.suite = suite or standard_suite(self.device)
        self.faults = (
            self.config.faults if self.config.faults is not None
            else FaultPlan()
        )
        self.faults.check_nodes(self.config.n_nodes)
        # Heterogeneous hardware: resolve per-node specs, calibrating
        # one suite per *distinct* device (identical specs share; a
        # spec matching the reference device reuses the fleet suite).
        if self.config.node_devices is not None:
            cache: Dict[str, Tuple[GPUDeviceSpec, BenchmarkSuite]] = {}
            node_devices: List[GPUDeviceSpec] = []
            node_suites: List[BenchmarkSuite] = []
            for spec in self.config.node_devices:
                if spec not in cache:
                    dev = device_from_spec(spec)
                    s = self.suite if dev == self.device else standard_suite(dev)
                    cache[spec] = (dev, s)
                node_devices.append(cache[spec][0])
                node_suites.append(cache[spec][1])
        else:
            node_devices = [self.device] * self.config.n_nodes
            node_suites = [self.suite] * self.config.n_nodes
        self.tracker = SLOTracker(self.tenants, obs=self.obs)
        self.router: RoutingPolicy = make_router(self.config.routing)
        self.hooks: List[FleetHook] = []
        seed = self.config.seed
        self.nodes: List[FleetNode] = [
            FleetNode(
                index=i,
                tenants=self.tenants,
                config=NodeConfig(
                    mode=mode,
                    policy=self.config.policy,
                    admission=self.config.admission,
                    delay_headroom=self.config.delay_headroom,
                    oracle_model=self.config.oracle_model,
                    seed=(seed + i) if seed is not None else None,
                    max_inflight=self.config.max_inflight,
                    queue=self.config.queue,
                ),
                tracker=self.tracker,
                device=node_devices[i],
                suite=node_suites[i],
                hooks=self.hooks,
            )
            for i, mode in enumerate(self.config.node_modes)
        ]
        self.stealer = WorkStealer(
            self.config.steal_threshold_us, self.config.max_steals_per_tick
        )
        # Front-door rate limiting: one bucket per rate-limited tenant,
        # enforced once for the whole fleet (nodes see no rate limits).
        self._buckets: Dict[str, TokenBucket] = {
            t.name: TokenBucket(t.rate_limit_rps, t.burst)
            for t in self.tenants
            if t.rate_limit_rps is not None
        }
        self._models = None  # canonical duration predictor, built lazily
        self._next_req_id = 1
        self.requests: List[NodeRequest] = []
        self.steals: List[Tuple[float, int, int, int]] = []
        #: (t_us, action-kind, node) per applied fault control point.
        self.fault_log: List[Tuple[float, str, int]] = []
        #: (t_us, req_id, src, dst) per crash-reclaimed re-route.
        self.reroutes: List[Tuple[float, int, int, int]] = []
        #: req_ids that ended ``lost`` (crash in-flight or total outage).
        self.lost_ids: List[int] = []
        #: (t_us, node, queue_len, load_us) samples from steal ticks —
        #: the rollup exports them as per-node Chrome counter tracks
        self.load_samples: List[Tuple[float, int, int, float]] = []
        self._traces: List[ArrivalTrace] = []
        self._ran = False
        if self.obs.enabled:
            m = self.obs.metrics
            self._m_routed = m.counter(
                "flep_fleet_routed_total",
                "requests assigned to each node by the routing policy",
                ("node",),
            )
            self._m_steals = m.counter(
                "flep_fleet_steals_total",
                "queued requests migrated between nodes",
                ("src", "dst"),
            )
            self._m_load = m.gauge(
                "flep_fleet_node_load_us",
                "admitted-but-unfinished predicted work per node (µs)",
                ("node",),
            )
            self._m_qlen = m.gauge(
                "flep_fleet_queue_len",
                "stealable (queued, undispatched) requests per node",
                ("node",),
            )
            self._m_attain = m.gauge(
                "flep_fleet_attainment_ratio",
                "fleet-wide fraction of SLO-carrying requests meeting it",
            )
            self._m_faults = m.counter(
                "flep_fleet_faults_total",
                "fault control points applied, by action kind and node",
                ("kind", "node"),
            )
            self._m_reroutes = m.counter(
                "flep_fleet_reroutes_total",
                "crash-reclaimed requests re-routed to a surviving node",
                ("src", "dst"),
            )
            self._m_lost = m.counter(
                "flep_fleet_lost_total",
                "requests lost to node crashes (node=none: total outage)",
                ("node",),
            )
            self._m_drain_shed = m.counter(
                "flep_fleet_drain_shed_total",
                "requests shed at a node's drain deadline",
                ("node",),
            )

    # ------------------------------------------------------------------
    # workload wiring (ServingSystem's API, verbatim)
    # ------------------------------------------------------------------
    def add_trace(self, trace: ArrivalTrace) -> None:
        """Queue an open-loop arrival trace (tenants must be known)."""
        for a in trace.arrivals:
            if a.tenant not in self.tenants:
                raise FleetError(f"trace names unknown tenant {a.tenant!r}")
        self._traces.append(trace)

    def add_generator(self, gen: LoadGenerator) -> None:
        self.add_trace(gen.generate())

    def submit_at(
        self, at_us: float, tenant: str, kernel: str,
        input_name: str = "large",
    ) -> None:
        """One explicit request at ``at_us`` (e.g. the long batch job)."""
        self.add_trace(ArrivalTrace(arrivals=[
            Arrival(at_us=at_us, kernel_name=kernel, input_name=input_name,
                    tenant=tenant)
        ]))

    # ------------------------------------------------------------------
    # predictions
    # ------------------------------------------------------------------
    def predicted_us(self, kernel: str, input_name: str) -> float:
        """The fleet's one canonical duration prediction per request —
        routing and every node's admission all budget with the same
        number, whatever backend the request lands on."""
        if self._models is None:
            from ..runtime.models import ModelBank, OracleModelBank

            if self.config.oracle_model:
                self._models = OracleModelBank(self.suite, self.device)
            else:
                self._models = ModelBank(
                    self.suite, seed=self.config.seed or 0,
                    device=self.device,
                )
        kspec = self.suite[kernel]
        return self._models.predict(kernel, kspec.input(input_name))

    # ------------------------------------------------------------------
    # co-simulation control loop
    # ------------------------------------------------------------------
    def _advance_all(self, until: float) -> None:
        for node in self.nodes:
            node.advance(until)
        self._now = until
        for hook in self.hooks:
            hook.on_advance(until)

    def _choose_node(self, req: NodeRequest, now: float) -> Optional[int]:
        """Run the routing policy over the *routable* nodes; returns the
        fleet index of the pick, or ``None`` on total outage."""
        routable = [n for n in self.nodes if n.routable]
        if not routable:
            return None
        pick = self.router.choose(req, routable, now)
        if not 0 <= pick < len(routable):
            raise FleetError(
                f"router {self.router.name!r} chose node {pick} of "
                f"{len(routable)} routable"
            )
        return routable[pick].index

    def _lose_unroutable(self, req: NodeRequest) -> None:
        """No routable node exists: the request is terminal ``lost`` at
        the front door (accounted, never silently dropped)."""
        req.state = "lost"
        req.node = None
        self.lost_ids.append(req.req_id)
        self.tracker.mark_lost(req.req_id)
        for hook in self.hooks:
            hook.on_lost(req, -1)
            hook.on_resolve(req, -1)
        if self.obs.enabled:
            self._m_lost.inc(node="none")

    def _route(self, arrival: Arrival) -> None:
        """One request through the front door at fleet time ``_now``."""
        now = self._now
        tenant = self.tenants[arrival.tenant]
        req_id = self._next_req_id
        self._next_req_id += 1
        predicted = self.predicted_us(arrival.kernel_name, arrival.input_name)
        self.tracker.open_request(
            req_id, tenant.name, now, arrival.kernel_name,
            arrival.input_name, predicted,
        )
        bucket = self._buckets.get(tenant.name)
        if bucket is not None and not bucket.try_take(now):
            self.tracker.mark_shed(req_id, rate_limited=True)
            return
        deadline_rel = tenant.effective_deadline_us
        req = NodeRequest(
            req_id=req_id,
            tenant=tenant,
            kernel=arrival.kernel_name,
            input_name=arrival.input_name,
            arrived_us=now,
            predicted_us=predicted,
            deadline_us=(
                now + deadline_rel if deadline_rel is not None else None
            ),
        )
        self.requests.append(req)
        idx = self._choose_node(req, now)
        if idx is None:
            self._lose_unroutable(req)
            return
        for hook in self.hooks:
            hook.on_route(req, idx)
        if self.obs.enabled:
            self._m_routed.inc(node=str(idx))
        self.nodes[idx].enqueue(req)

    def _reroute(self, reclaimed: List[NodeRequest], src: int) -> None:
        """Live re-route requests reclaimed from crashed node ``src``
        through the active routing policy. Re-admission is skipped —
        the fleet already accepted this work — and a total outage turns
        each request terminal ``lost`` instead of dropping it."""
        now = self._now
        for req in reclaimed:
            idx = self._choose_node(req, now)
            if idx is None:
                self._lose_unroutable(req)
                continue
            self.nodes[src].stats.rerouted_out += 1
            self.reroutes.append((now, req.req_id, src, idx))
            for hook in self.hooks:
                hook.on_reroute(req, src, idx)
            if self.obs.enabled:
                self._m_reroutes.inc(src=str(src), dst=str(idx))
            self.nodes[idx].accept_rerouted(req)

    def _apply_fault(self, action: FaultAction) -> None:
        """One fault control point (every node already advanced here)."""
        now = self._now
        node = self.nodes[action.node]
        self.fault_log.append((now, action.kind, action.node))
        if self.obs.enabled:
            self._m_faults.inc(kind=action.kind, node=str(action.node))
        if action.kind == "crash":
            reclaimed, lost = node.crash(now)
            self.lost_ids.extend(r.req_id for r in lost)
            if self.obs.enabled:
                for _ in lost:
                    self._m_lost.inc(node=str(action.node))
            self._reroute(reclaimed, action.node)
        elif action.kind == "drain":
            node.begin_drain(now, action.event.deadline_us)
        elif action.kind == "drain-deadline":
            shed = node.finish_drain()
            if self.obs.enabled:
                for _ in shed:
                    self._m_drain_shed.inc(node=str(action.node))
        elif action.kind == "stall":
            node.stall(now, action.event.duration_us)
        elif action.kind == "unstall":
            node.unstall()
        elif action.kind == "rejoin":
            node.rejoin(now)
        else:  # pragma: no cover - expand_plan emits only the above
            raise FleetError(f"unknown fault action {action.kind!r}")
        # after the transition, so a rejoin hook sees the fresh backend
        if action.kind in FAULT_KINDS:
            for hook in self.hooks:
                hook.on_fault(action.event, action.node)

    def _steal_tick(self) -> None:
        now = self._now

        def record(req: NodeRequest, src: int, dst: int) -> None:
            self.steals.append((now, req.req_id, src, dst))
            for hook in self.hooks:
                hook.on_steal(req, src, dst)
            if self.obs.enabled:
                self._m_steals.inc(src=str(src), dst=str(dst))

        self.stealer.rebalance(self.nodes, on_steal=record)
        for node in self.nodes:
            self.load_samples.append(
                (now, node.index, node.queue_len, node.load_us())
            )
            if self.obs.enabled:
                self._m_load.set(node.load_us(), node=str(node.index))
                self._m_qlen.set(node.queue_len, node=str(node.index))

    def run(self, until: Optional[float] = None) -> FleetReport:
        """Drive arrivals, faults, steal ticks, node drains; roll up."""
        if self._ran:
            raise FleetError("a FleetSystem runs once; build a new one")
        self._ran = True
        if not self._traces:
            raise FleetError("nothing to serve: add a trace or a submission")
        arrivals = merge_traces(*self._traces).sorted()
        actions = expand_plan(self.faults)
        cfg = self.config
        tick = cfg.steal_interval_us
        next_tick = tick if cfg.steal and len(self.nodes) > 1 else None
        i = fi = 0
        # Phase 1 — walk the merged control points (fault actions,
        # arrivals, steal ticks) in time order. Ties break fault first
        # (a crash at t kills before an arrival at t routes), then
        # arrival, then tick — one fixed order, so runs are replayable.
        while i < len(arrivals) or fi < len(actions):
            candidates = []
            if fi < len(actions):
                candidates.append((actions[fi].at_us, 0))
            if i < len(arrivals):
                candidates.append((arrivals[i].at_us, 1))
            if next_tick is not None and (until is None or next_tick <= until):
                candidates.append((next_tick, 2))
            t, kind = min(candidates)
            if until is not None and t > until:
                break
            self._advance_all(t)
            if kind == 0:
                self._apply_fault(actions[fi])
                fi += 1
            elif kind == 1:
                # all arrivals sharing this timestamp route back-to-back
                while i < len(arrivals) and arrivals[i].at_us == t:
                    self._route(arrivals[i])
                    i += 1
            else:
                self._steal_tick()
                next_tick += tick
        # Phase 2 — no more arrivals or faults: keep ticking while
        # stealable work remains (queued work implies pending node
        # events, so the tick times stay reachable — every stall and
        # drain deadline was already resolved in phase 1), then let
        # every surviving node drain.
        if next_tick is not None:
            while any(node.queue for node in self.nodes):
                if until is not None and next_tick > until:
                    break
                self._advance_all(next_tick)
                self._steal_tick()
                next_tick += tick
        for node in self.nodes:
            if until is None:
                node.drain()
            else:
                node.advance(until)
        self._now = max(node.sim.now for node in self.nodes)
        for hook in self.hooks:
            hook.finalize(self)
        report = build_report(self)
        if self.obs.enabled:
            if report.fleet_attainment is not None:
                self._m_attain.set(report.fleet_attainment)
            self.obs.finalize()
        return report

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FleetSystem({len(self.nodes)} nodes, "
            f"routing={self.config.routing!r}, now={self._now:.0f}us)"
        )
