"""Multi-GPU fleet: cluster dispatcher, routing, work stealing, faults.

The fleet layer scales the single-GPU serving stack out to N
independently-clocked simulated GPUs behind one front door:

* :mod:`.node` — one GPU wrapped in a per-node FLEP/MPS runtime and a
  stealable queue, with a fault lifecycle (up / stalled / draining /
  drained / down);
* :mod:`.routing` — pluggable dispatch policies (round-robin,
  least-loaded, deadline-aware, tenant-affinity with spill);
* :mod:`.dispatcher` — the :class:`FleetSystem` facade: conservative
  co-simulation of all node clocks, front-door rate limiting, the
  work-stealing rebalancer, fault injection with live re-routing,
  ``flep_fleet_*`` metrics;
* :mod:`.faults` — deterministic seeded :class:`FaultPlan` (crash,
  drain, stall, rejoin) replayed as co-simulation control points;
* :mod:`.rollup` — fleet/per-node reports (with loss / re-route /
  drain-shed attribution and a conservation ledger) and Chrome-trace
  export.
"""

from .dispatcher import FleetConfig, FleetHook, FleetSystem, WorkStealer
from .faults import (
    FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    expand_plan,
    parse_fault_spec,
    random_plan,
)
from .node import FleetNode, NodeConfig, NodeRequest, NodeStats
from .rollup import FleetReport, NodeReport, build_report
from .routing import (
    ROUTERS,
    DeadlineAwareRouter,
    LeastLoadedRouter,
    RoundRobinRouter,
    RoutingPolicy,
    TenantAffinityRouter,
    make_router,
)

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "FleetConfig",
    "FleetHook",
    "FleetNode",
    "FleetReport",
    "FleetSystem",
    "NodeConfig",
    "NodeReport",
    "NodeRequest",
    "NodeStats",
    "ROUTERS",
    "RoutingPolicy",
    "RoundRobinRouter",
    "LeastLoadedRouter",
    "DeadlineAwareRouter",
    "TenantAffinityRouter",
    "WorkStealer",
    "build_report",
    "expand_plan",
    "make_router",
    "parse_fault_spec",
    "random_plan",
]
