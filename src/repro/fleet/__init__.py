"""Multi-GPU fleet: cluster dispatcher, routing, work stealing, rollups.

The fleet layer scales the single-GPU serving stack out to N
independently-clocked simulated GPUs behind one front door:

* :mod:`.node` — one GPU wrapped in a per-node FLEP/MPS runtime and a
  stealable queue;
* :mod:`.routing` — pluggable dispatch policies (round-robin,
  least-loaded, deadline-aware, tenant-affinity with spill);
* :mod:`.dispatcher` — the :class:`FleetSystem` facade: conservative
  co-simulation of all node clocks, front-door rate limiting, the
  work-stealing rebalancer, ``flep_fleet_*`` metrics;
* :mod:`.rollup` — fleet/per-node reports and Chrome-trace export.
"""

from .dispatcher import FleetConfig, FleetHook, FleetSystem, WorkStealer
from .node import FleetNode, NodeConfig, NodeRequest, NodeStats
from .rollup import FleetReport, NodeReport, build_report
from .routing import (
    ROUTERS,
    DeadlineAwareRouter,
    LeastLoadedRouter,
    RoundRobinRouter,
    RoutingPolicy,
    TenantAffinityRouter,
    make_router,
)

__all__ = [
    "FleetConfig",
    "FleetHook",
    "FleetNode",
    "FleetReport",
    "FleetSystem",
    "NodeConfig",
    "NodeReport",
    "NodeRequest",
    "NodeStats",
    "ROUTERS",
    "RoutingPolicy",
    "RoundRobinRouter",
    "LeastLoadedRouter",
    "DeadlineAwareRouter",
    "TenantAffinityRouter",
    "WorkStealer",
    "build_report",
    "make_router",
]
