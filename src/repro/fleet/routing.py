"""Pluggable routing policies for the cluster dispatcher.

A routing policy answers one question per arriving request: which node
serves it? The contract (enforced by the dispatcher and exercised by
``tests/fleet/test_routing.py``):

* ``choose(req, nodes, now)`` returns an integer index in
  ``[0, len(nodes))``;
* ``nodes`` is the sequence of **routable** nodes only — the dispatcher
  fences draining / drained / crashed nodes out before asking, so a
  policy never has to reason about the fault lifecycle (a node's
  ``.index`` is its fleet identity; its position in ``nodes`` is not);
* the policy must not mutate the nodes — it may only read their load
  introspection API (``load_us()``, ``backlog_for()``, ``queue_len``);
  a policy may keep *internal* state (round-robin's cursor);
* the decision must be deterministic: same request sequence against the
  same node states picks the same nodes, so fleet runs are
  bit-reproducible per seed. Ties always break toward the lowest node
  index.

The catalogue:

================  =====================================================
Router            Decision
================  =====================================================
round-robin       Cycle through the nodes in index order, ignoring
                  state entirely — the baseline every smarter policy is
                  judged against.
least-loaded      The node with the least admitted-but-unfinished
                  predicted work (queued + inflight).
deadline          SLO-aware (Hummingbird's argument): estimate each
                  node's completion time for this request — now + the
                  backlog that will be served at or above the request's
                  priority + the predicted duration — and pick the node
                  that finishes earliest, preferring nodes that meet
                  the absolute deadline. Requests without a deadline
                  fall back to least-loaded.
affinity          Tenant affinity with spill: a stable hash of the
                  tenant name pins each tenant to a preferred node
                  (cache/model locality in a real cluster); when the
                  preferred node is overloaded relative to the fleet
                  mean, the request spills to the least-loaded node.
================  =====================================================
"""

from __future__ import annotations

import abc
import zlib
from typing import Dict, Sequence, Type

from ..errors import FleetError


class RoutingPolicy(abc.ABC):
    """One dispatch decision per request (see the module contract)."""

    name = "abstract"

    @abc.abstractmethod
    def choose(self, req, nodes: Sequence, now: float) -> int:
        """Index of the node that serves ``req`` (arriving at ``now``)."""

    # ------------------------------------------------------------------
    @staticmethod
    def _least_loaded(nodes: Sequence) -> int:
        """Lowest-index node with the minimum predicted load."""
        return min(range(len(nodes)), key=lambda i: (nodes[i].load_us(), i))


class RoundRobinRouter(RoutingPolicy):
    """Cycle through nodes in index order; state-blind baseline."""

    name = "round-robin"

    def __init__(self):
        self._next = 0

    def choose(self, req, nodes: Sequence, now: float) -> int:
        idx = self._next % len(nodes)
        self._next = idx + 1
        return idx


class LeastLoadedRouter(RoutingPolicy):
    """Join the node with the least admitted-but-unfinished work."""

    name = "least-loaded"

    def choose(self, req, nodes: Sequence, now: float) -> int:
        return self._least_loaded(nodes)


class DeadlineAwareRouter(RoutingPolicy):
    """Earliest-estimated-finish routing, deadline requests first-class.

    For a request carrying an absolute deadline the router estimates,
    per node, when the request would complete there — ``now`` plus the
    node's backlog at-or-above the request's priority plus the
    predicted duration — and joins the earliest-finishing node
    (deadline-meeting nodes strictly preferred over missing ones, so a
    uniformly-overloaded fleet still picks the least-bad node). Requests
    without a deadline are routed least-loaded so best-effort work
    fills the valleys.
    """

    name = "deadline"

    def choose(self, req, nodes: Sequence, now: float) -> int:
        if req.deadline_us is None:
            return self._least_loaded(nodes)
        best_idx = 0
        best_key = None
        for i, node in enumerate(nodes):
            finish = now + node.backlog_for(req.tenant.priority) + req.predicted_us
            key = (finish > req.deadline_us, finish, i)
            if best_key is None or key < best_key:
                best_key = key
                best_idx = i
        return best_idx


class TenantAffinityRouter(RoutingPolicy):
    """Stable tenant→node pinning, spilling when the home node is hot.

    ``spill_factor`` scales the fleet-mean load: the preferred node is
    used while its load stays within ``spill_factor × mean + slack``;
    beyond that the request spills to the least-loaded node (and the
    tenant's locality benefit is forfeited for this request only).
    """

    name = "affinity"

    def __init__(self, spill_factor: float = 2.0, slack_us: float = 1_000.0):
        if spill_factor < 1.0:
            raise FleetError("affinity spill_factor must be >= 1")
        if slack_us < 0:
            raise FleetError("affinity slack_us must be >= 0")
        self.spill_factor = spill_factor
        self.slack_us = slack_us

    @staticmethod
    def preferred_node(tenant_name: str, n_nodes: int) -> int:
        """Stable (process-independent) tenant→node hash."""
        return zlib.crc32(tenant_name.encode("utf-8")) % n_nodes

    def choose(self, req, nodes: Sequence, now: float) -> int:
        pref = self.preferred_node(req.tenant.name, len(nodes))
        loads = [n.load_us() for n in nodes]
        mean = sum(loads) / len(loads)
        if loads[pref] <= self.spill_factor * mean + self.slack_us:
            return pref
        return self._least_loaded(nodes)


#: routing-policy name -> class (the `flep fleet --routing` choices)
ROUTERS: Dict[str, Type[RoutingPolicy]] = {
    r.name: r
    for r in (
        RoundRobinRouter,
        LeastLoadedRouter,
        DeadlineAwareRouter,
        TenantAffinityRouter,
    )
}


def make_router(name: str, **kwargs) -> RoutingPolicy:
    """Instantiate a registered routing policy by name."""
    if name not in ROUTERS:
        raise FleetError(f"unknown routing policy {name!r} (have {sorted(ROUTERS)})")
    return ROUTERS[name](**kwargs)
