"""One fleet node: an independently-clocked simulated GPU behind a
per-node queue manager.

A :class:`FleetNode` wraps one per-GPU runtime — a
:class:`~repro.core.flep.FlepSystem` (temporal- or spatial-preemption
FLEP) or a plain :class:`~repro.baselines.mps_corun.MPSCoRun` — behind
a small queue manager: routed requests wait in an explicit node queue,
and at most ``max_inflight`` of them are dispatched into the backend
runtime at a time — except that on preemption-capable (FLEP) nodes a
queued request always bypasses a window full of strictly
lower-priority work, because the backend can preempt that work out of
its way (convoying it at the dispatch layer would silently undo the
preemption the backend exists to provide). That split is what makes
work stealing safe and cheap: only requests still in the node queue
(state ``queued``) are ever migrated; a request handed to the backend
(state ``dispatched``) belongs to that GPU until it completes.

Each node owns its **own simulator clock**. The cluster dispatcher
aligns the clocks at control points (arrivals, steal ticks, fault
events) by calling :meth:`FleetNode.advance`; between control points
nodes evolve independently, which is sound because nothing couples two
GPUs except dispatch-time routing and queue-level stealing.

**Node lifecycle** (fault injection, DESIGN.md §14)::

    up ──crash──▶ down ──rejoin──▶ up (fresh backend)
    up ──stall──▶ stalled ──unstall──▶ up
    up ──drain──▶ draining ──deadline──▶ drained

``up`` and ``stalled`` nodes are *routable*; ``draining`` nodes are
fenced (no new routing, no steals in) but keep dispatching their own
queue until the drain deadline; ``drained`` and ``down`` nodes hold no
work. Only ``down`` nodes stop advancing their clock — a crash freezes
the simulator so the in-flight kernels it was running can never
complete (they are accounted ``lost``).

Per-node SLO accounting reuses the serving layer unchanged: the node
runs its requests through a (fleet-shared) SLO tracker and an
:class:`~repro.serving.admission.AdmissionController` built over the
same tenant set — admission budgets against *this node's* backlog, so
an overloaded node sheds while an idle one accepts. Admission-delayed
(``held``) requests count toward the backlog the routing policies and
the work stealer observe: delayed work is still committed work.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace
from typing import Deque, Dict, List, Optional, Tuple

from ..errors import FleetError
from ..serving.admission import AdmissionController, Decision
from ..serving.server import MODES
from ..serving.slo import SLOTracker
from ..serving.tenants import Tenant, TenantSet

#: Node-queue request lifecycle (the steal-safety invariant is stated
#: over these): routed -> queued | held -> dispatched -> done, or a
#: terminal shed (admission or drain fencing) / lost (node crash).
REQUEST_STATES = (
    "routed", "queued", "held", "dispatched", "done", "shed", "lost",
)

#: Node lifecycle states (see the module docstring's diagram).
NODE_STATES = ("up", "stalled", "draining", "drained", "down")


@dataclass
class NodeConfig:
    """Knobs of one fleet node (mirrors ServingConfig where they meet)."""

    mode: str = "flep-spatial"
    #: Scheduling policy for the FLEP modes (EDF = deadline-aware).
    policy: str = "edf"
    #: Admission control on/off; ``None`` picks the mode's default
    #: (on for FLEP, off for MPS — same rule as the serving layer).
    admission: Optional[bool] = None
    delay_headroom: float = 0.5
    oracle_model: bool = False
    seed: Optional[int] = None
    #: Requests dispatched into the backend runtime at once; the rest
    #: wait in the (stealable) node queue. FLEP nodes exceed the window
    #: for requests that outrank everything in flight (preemptive
    #: dispatch — see ``_pump``).
    max_inflight: int = 4
    #: Event-queue engine of the node's private simulator
    #: (``heap`` | ``calendar``) — schedules are engine-independent.
    queue: str = "heap"

    def __post_init__(self):
        if self.mode not in MODES:
            raise FleetError(f"unknown node mode {self.mode!r} (have {MODES})")
        if self.max_inflight < 1:
            raise FleetError("max_inflight must be >= 1")

    @property
    def admission_enabled(self) -> bool:
        if self.admission is not None:
            return self.admission
        return self.mode != "mps"


@dataclass
class NodeRequest:
    """One routed request as the fleet layer tracks it."""

    req_id: int
    tenant: Tenant
    kernel: str
    input_name: str
    #: Fleet-time arrival (when the dispatcher routed it).
    arrived_us: float
    predicted_us: float
    #: Absolute completion deadline (µs); ``None`` = best-effort.
    deadline_us: Optional[float] = None
    state: str = "routed"
    #: Index of the node currently owning the request.
    node: Optional[int] = None
    #: Times this request was migrated by the work stealer.
    steals: int = 0
    #: Times this request was reclaimed from a failed/fenced node and
    #: re-routed by the dispatcher.
    reroutes: int = 0
    #: Why a shed happened: ``admission`` or ``drain``.
    shed_cause: Optional[str] = None
    #: Node that actually completed it (for per-node attribution).
    completed_node: Optional[int] = None


@dataclass
class NodeStats:
    """Per-node counters the rollup aggregates."""

    routed: int = 0
    dispatched: int = 0
    completed: int = 0
    shed: int = 0
    drain_shed: int = 0
    lost: int = 0
    delayed: int = 0
    stolen_in: int = 0
    stolen_out: int = 0
    rerouted_in: int = 0
    rerouted_out: int = 0
    rejoins: int = 0
    peak_queue: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


class FleetNode:
    """One simulated GPU + queue manager inside the fleet."""

    def __init__(
        self,
        index: int,
        tenants: TenantSet,
        config: Optional[NodeConfig] = None,
        tracker: Optional[SLOTracker] = None,
        device=None,
        suite=None,
        hooks: Optional[List] = None,
    ):
        self.index = index
        self.tenants = tenants
        self.config = config or NodeConfig()
        self.device = device
        self.suite = suite
        self._build_backend()
        #: Fleet-shared tracker (the dispatcher owns it); a standalone
        #: node builds its own so it stays usable in isolation/tests.
        self.tracker = tracker if tracker is not None else SLOTracker(tenants)
        # Rate limiting is a *front-door* concern (a per-node bucket
        # would multiply every tenant's budget by the fleet size), so
        # node-level admission sees tenants without their rate limits.
        self.admission = AdmissionController(
            TenantSet([replace(t, rate_limit_rps=None) for t in tenants]),
            delay_headroom=self.config.delay_headroom,
        )
        #: dispatcher-owned hook list (monitors, metrics); shared object.
        self.hooks: List = hooks if hooks is not None else []
        self.queue: Deque[NodeRequest] = deque()
        self.inflight: Dict[int, NodeRequest] = {}
        #: Admission-delayed requests the node has promised to accept —
        #: they count as backlog (delayed work is committed work).
        self.held: Dict[int, NodeRequest] = {}
        self.stats = NodeStats()
        self._backlog_us: Dict[int, float] = {}
        #: Lifecycle (see NODE_STATES); faults drive the transitions.
        self.state: str = "up"
        self.down_at: Optional[float] = None
        self.drain_deadline_us: Optional[float] = None
        self.stall_until_us: Optional[float] = None

    def _build_backend(self) -> None:
        """(Re)create the backend runtime; also used by :meth:`rejoin`."""
        # imported here so a rejoin rebuild never pays import cost twice
        from ..baselines.mps_corun import MPSCoRun
        from ..core.flep import FlepSystem
        from ..runtime.engine import RuntimeConfig

        mode = self.config.mode
        if mode == "mps":
            self.backend = MPSCoRun(
                device=self.device, suite=self.suite,
                seed=self.config.seed, queue=self.config.queue,
            )
            self.system: Optional[FlepSystem] = None
        else:
            self.system = FlepSystem(
                policy=self.config.policy,
                device=self.device,
                suite=self.suite,
                config=RuntimeConfig(
                    spatial_enabled=(mode == "flep-spatial"),
                    oracle_model=self.config.oracle_model,
                ),
                seed=self.config.seed,
                queue=self.config.queue,
            )
            self.backend = self.system
        self.sim = self.backend.sim

    # ------------------------------------------------------------------
    # clock control (dispatcher only)
    # ------------------------------------------------------------------
    def advance(self, until: float) -> None:
        """Run this node's simulator up to fleet time ``until``.

        Idle nodes (empty event queue) have their clock moved forward
        explicitly so a request routed at ``until`` is stamped at the
        fleet time, not at whenever the node last had work. A ``down``
        node never advances — its clock froze at the crash.
        """
        if self.state == "down" or until < self.sim.now:
            return
        self.sim.run(until=until)
        if self.sim.now < until:
            self.sim.clock.advance_to(until)

    def drain(self) -> None:
        """Run this node to completion (no more control points)."""
        if self.state == "down":
            return
        self.sim.run()

    @property
    def idle(self) -> bool:
        return not self.queue and not self.inflight and self.sim.pending() == 0

    # ------------------------------------------------------------------
    # lifecycle (fault injection; dispatcher control points only)
    # ------------------------------------------------------------------
    @property
    def routable(self) -> bool:
        """May the routing policy (or the stealer) hand this node new
        work? Stalled nodes stay routable — they are slow, not gone —
        which is precisely the condition load-aware routing must beat
        round-robin under."""
        return self.state in ("up", "stalled")

    @property
    def active(self) -> bool:
        """Does this node's clock still advance?"""
        return self.state != "down"

    def crash(self, now: float) -> Tuple[List[NodeRequest], List[NodeRequest]]:
        """Kill the node at fleet time ``now``.

        Returns ``(reclaimed, lost)``: queued + held requests the
        dispatcher must re-route (they never touched the backend), and
        the in-flight requests that died with the GPU — those are
        marked terminal (``lost``) here, with the SLO tracker and the
        hooks told exactly once.
        """
        if self.state == "down":
            raise FleetError(f"node {self.index} is already down")
        reclaimed: List[NodeRequest] = []
        while self.queue:
            req = self.queue.popleft()
            req.state = "routed"
            req.node = None
            reclaimed.append(req)
        for req_id in sorted(self.held):
            req = self.held.pop(req_id)
            req.state = "routed"
            req.node = None
            reclaimed.append(req)
        lost: List[NodeRequest] = []
        for req_id in sorted(self.inflight):
            req = self.inflight.pop(req_id)
            req.state = "lost"
            self.stats.lost += 1
            self.tracker.mark_lost(req.req_id)
            self._notify("on_lost", req, self.index)
            self._notify("on_resolve", req, self.index)
            lost.append(req)
        self._backlog_us.clear()
        self.state = "down"
        self.down_at = now
        self.drain_deadline_us = None
        self.stall_until_us = None
        return reclaimed, lost

    def begin_drain(self, now: float, deadline_us: float) -> None:
        """Fence the node for a planned drain ending ``deadline_us``
        from now. It keeps dispatching its own queue until then."""
        if self.state != "up":
            raise FleetError(
                f"node {self.index} is {self.state}, only an up node drains"
            )
        self.state = "draining"
        self.drain_deadline_us = now + deadline_us

    def finish_drain(self) -> List[NodeRequest]:
        """Drain deadline reached: shed whatever is still queued or held
        (cause ``drain``), stop dispatching; in-flight work finishes on
        its own clock. Returns the drain-shed requests."""
        if self.state != "draining":
            raise FleetError(
                f"node {self.index} is {self.state}, not draining"
            )
        shed: List[NodeRequest] = []
        while self.queue:
            shed.append(self.queue.popleft())
        for req_id in sorted(self.held):
            shed.append(self.held.pop(req_id))
        for req in shed:
            self._backlog_sub(req)
            req.state = "shed"
            req.shed_cause = "drain"
            req.node = self.index
            self.stats.shed += 1
            self.stats.drain_shed += 1
            self.tracker.mark_shed(req.req_id, cause="drain")
            self._notify("on_resolve", req, self.index)
        self.state = "drained"
        self.drain_deadline_us = None
        return shed

    def stall(self, now: float, duration_us: float) -> None:
        """Freeze the dispatch window for ``duration_us`` (transient
        hiccup): in-flight work keeps running, the queue keeps filling."""
        if self.state != "up":
            raise FleetError(
                f"node {self.index} is {self.state}, only an up node stalls"
            )
        self.state = "stalled"
        self.stall_until_us = now + duration_us

    def unstall(self) -> None:
        """End a stall and immediately pump the backed-up queue."""
        if self.state != "stalled":
            raise FleetError(f"node {self.index} is {self.state}, not stalled")
        self.state = "up"
        self.stall_until_us = None
        self._pump()

    def rejoin(self, now: float) -> None:
        """A crashed node returns: fresh backend runtime, empty queue,
        clock aligned to fleet time ``now``."""
        if self.state != "down":
            raise FleetError(
                f"node {self.index} is {self.state}, only a down node rejoins"
            )
        self._build_backend()
        self.sim.clock.advance_to(now)
        self.state = "up"
        self.down_at = None
        self.stats.rejoins += 1

    # ------------------------------------------------------------------
    # load introspection (read-only; the routing-policy contract)
    # ------------------------------------------------------------------
    def queued_us(self) -> float:
        return sum(r.predicted_us for r in self.queue)

    def inflight_us(self) -> float:
        return sum(r.predicted_us for r in self.inflight.values())

    def held_us(self) -> float:
        return sum(r.predicted_us for r in self.held.values())

    def load_us(self) -> float:
        """Admitted-but-unfinished predicted work on this node (µs),
        including admission-delayed (held) requests."""
        return sum(self._backlog_us.values())

    def backlog_for(self, priority: int) -> float:
        """Backlog served at or above ``priority`` — under FLEP lower
        priority work is preempted out of the way; under MPS everything
        queues FIFO, so the whole backlog counts (same rule as
        :meth:`repro.serving.server.ServingSystem.backlog_us`). Held
        (admission-delayed) requests count: they are committed work the
        router and the stealer must see."""
        if self.config.mode == "mps":
            return sum(self._backlog_us.values())
        return sum(us for p, us in self._backlog_us.items() if p >= priority)

    @property
    def queue_len(self) -> int:
        return len(self.queue)

    # ------------------------------------------------------------------
    # backlog bookkeeping
    # ------------------------------------------------------------------
    def _backlog_add(self, req: NodeRequest) -> None:
        p = req.tenant.priority
        self._backlog_us[p] = self._backlog_us.get(p, 0.0) + req.predicted_us

    def _backlog_sub(self, req: NodeRequest) -> None:
        p = req.tenant.priority
        self._backlog_us[p] = max(
            0.0, self._backlog_us.get(p, 0.0) - req.predicted_us
        )

    # ------------------------------------------------------------------
    # request intake
    # ------------------------------------------------------------------
    def enqueue(self, req: NodeRequest) -> None:
        """Accept one routed request at the node's current clock."""
        if req.state != "routed":
            raise FleetError(
                f"request #{req.req_id} enqueued in state {req.state!r}"
            )
        if not self.routable:
            raise FleetError(
                f"request #{req.req_id} routed to node {self.index} "
                f"in state {self.state!r}"
            )
        req.node = self.index
        self.stats.routed += 1
        if not self.config.admission_enabled:
            self._accept(req)
            return
        verdict = self.admission.decide(
            req.tenant, self.sim.now, req.predicted_us,
            self.backlog_for(req.tenant.priority),
        )
        if verdict.decision is Decision.SHED:
            req.state = "shed"
            req.shed_cause = "admission"
            self.stats.shed += 1
            self.tracker.mark_shed(req.req_id)
            self._notify("on_resolve", req, self.index)
        elif verdict.decision is Decision.DELAY:
            req.state = "held"
            self.held[req.req_id] = req
            self._backlog_add(req)
            self.stats.delayed += 1
            self.tracker.mark_delayed(req.req_id)
            self.sim.schedule(
                verdict.hold_us, lambda: self._admit_held(req),
                label=f"fleet-delay:n{self.index}",
            )
        else:
            self._accept(req)

    def _admit_held(self, req: NodeRequest) -> None:
        """Delay expired: accept, unless the request was reclaimed (node
        crash) or shed (drain fence) while it waited — the held dict is
        the source of truth, a stale timer is a no-op."""
        if self.held.pop(req.req_id, None) is None:
            return
        self._accept(req, from_held=True)

    def _accept(self, req: NodeRequest, from_held: bool = False) -> None:
        """Admitted: join the (stealable) node queue and pump."""
        req.state = "queued"
        req.node = self.index
        if not from_held:
            self._backlog_add(req)
        self.queue.append(req)
        if len(self.queue) > self.stats.peak_queue:
            self.stats.peak_queue = len(self.queue)
        self._pump()

    # ------------------------------------------------------------------
    # work stealing (dispatcher's rebalancer only)
    # ------------------------------------------------------------------
    def peek_tail(self) -> Optional[NodeRequest]:
        """The most recently queued request — the steal candidate."""
        return self.queue[-1] if self.queue else None

    def take(self, req: NodeRequest) -> NodeRequest:
        """Remove a **queued** request for migration to another node.

        Raises :class:`FleetError` for any request the node no longer
        controls — dispatched, held, or resolved work is never migrated
        (the fleet conformance monitor re-checks this independently).
        """
        if req.state != "queued":
            raise FleetError(
                f"cannot steal request #{req.req_id}: state is "
                f"{req.state!r}, only queued requests migrate"
            )
        if req.req_id in self.inflight:
            raise FleetError(
                f"cannot steal request #{req.req_id}: dispatched on "
                f"node {self.index}"
            )
        try:
            self.queue.remove(req)
        except ValueError:
            raise FleetError(
                f"request #{req.req_id} is not queued on node {self.index}"
            ) from None
        self._backlog_sub(req)
        req.state = "routed"
        req.node = None
        self.stats.stolen_out += 1
        return req

    def accept_stolen(self, req: NodeRequest) -> None:
        """Take over a migrated request (no re-admission: it was already
        admitted by the node that first accepted it)."""
        if req.state != "routed":
            raise FleetError(
                f"stolen request #{req.req_id} arrives in state {req.state!r}"
            )
        if not self.routable:
            raise FleetError(
                f"node {self.index} is {self.state}: it cannot receive "
                f"stolen request #{req.req_id}"
            )
        req.steals += 1
        self.stats.stolen_in += 1
        self._accept(req)

    def accept_rerouted(self, req: NodeRequest) -> None:
        """Take over a request reclaimed from a crashed node. Like a
        steal, re-admission is skipped: the work was already admitted
        into the fleet and losing its node must not shed it twice."""
        if req.state != "routed":
            raise FleetError(
                f"re-routed request #{req.req_id} arrives in state "
                f"{req.state!r}"
            )
        if not self.routable:
            raise FleetError(
                f"node {self.index} is {self.state}: it cannot receive "
                f"re-routed request #{req.req_id}"
            )
        req.reroutes += 1
        self.stats.rerouted_in += 1
        self._accept(req)

    # ------------------------------------------------------------------
    # dispatch into the backend
    # ------------------------------------------------------------------
    def _pump(self) -> None:
        if self.state in ("stalled", "drained", "down"):
            return
        while self.queue and len(self.inflight) < self.config.max_inflight:
            req = self.queue.popleft()
            self._dispatch(req)
        if self.config.mode == "mps":
            return
        # Preemptive dispatch (the FLEP property, lifted one layer up):
        # a full window of *lower-priority* kernels must not convoy a
        # higher-priority request at the dispatch layer — the backend
        # can preempt them, so hand the request over and let it. Without
        # this, a priority-p request waits behind in-flight work that
        # backlog_for(p) rightly excludes, and every estimate-driven
        # router (deadline, least-loaded) is systematically misled on
        # exactly the overloaded nodes it most needs to reason about.
        while self.queue and self.inflight:
            floor = min(
                r.tenant.priority for r in self.inflight.values()
            )
            idx = next(
                (i for i, r in enumerate(self.queue)
                 if r.tenant.priority > floor),
                None,
            )
            if idx is None:
                return
            req = self.queue[idx]
            del self.queue[idx]
            self._dispatch(req)

    def _dispatch(self, req: NodeRequest) -> None:
        req.state = "dispatched"
        self.inflight[req.req_id] = req
        self.stats.dispatched += 1
        self._notify("on_dispatch", req, self.index)
        tenant = req.tenant
        if self.system is not None:
            self.system.runtime.submit(
                process=tenant.name,
                kernel=req.kernel,
                input_name=req.input_name,
                priority=tenant.priority,
                tenant=tenant.name,
                deadline_us=req.deadline_us,
                on_finished=lambda inv, req=req: self._on_complete(req),
            )
        else:
            self.backend.submit_at(
                self.sim.now,
                f"{tenant.name}#{req.req_id}",
                req.kernel,
                req.input_name,
                on_done=lambda req=req: self._on_complete(req),
            )

    def _on_complete(self, req: NodeRequest) -> None:
        req.state = "done"
        req.completed_node = self.index
        del self.inflight[req.req_id]
        self._backlog_sub(req)
        self.stats.completed += 1
        self.tracker.mark_completed(req.req_id, self.sim.now)
        self._notify("on_resolve", req, self.index)
        self._pump()

    # ------------------------------------------------------------------
    def _notify(self, event: str, *args) -> None:
        for hook in self.hooks:
            getattr(hook, event)(*args)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FleetNode#{self.index}({self.config.mode}, {self.state}, "
            f"now={self.sim.now:.0f}us, queue={len(self.queue)}, "
            f"inflight={len(self.inflight)})"
        )
