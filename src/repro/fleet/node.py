"""One fleet node: an independently-clocked simulated GPU behind a
per-node queue manager.

A :class:`FleetNode` wraps one per-GPU runtime — a
:class:`~repro.core.flep.FlepSystem` (temporal- or spatial-preemption
FLEP) or a plain :class:`~repro.baselines.mps_corun.MPSCoRun` — behind
a small queue manager: routed requests wait in an explicit node queue,
and at most ``max_inflight`` of them are dispatched into the backend
runtime at a time. That split is what makes work stealing safe and
cheap: only requests still in the node queue (state ``queued``) are
ever migrated; a request handed to the backend (state ``dispatched``)
belongs to that GPU until it completes.

Each node owns its **own simulator clock**. The cluster dispatcher
aligns the clocks at control points (arrivals, steal ticks) by calling
:meth:`FleetNode.advance`; between control points nodes evolve
independently, which is sound because nothing couples two GPUs except
dispatch-time routing and queue-level stealing.

Per-node SLO accounting reuses the serving layer unchanged: the node
runs its requests through a (fleet-shared) SLO tracker and an
:class:`~repro.serving.admission.AdmissionController` built over the
same tenant set — admission budgets against *this node's* backlog, so
an overloaded node sheds while an idle one accepts.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace
from typing import Deque, Dict, List, Optional

from ..baselines.mps_corun import MPSCoRun
from ..core.flep import FlepSystem
from ..errors import FleetError
from ..runtime.engine import RuntimeConfig
from ..serving.admission import AdmissionController, Decision
from ..serving.server import MODES
from ..serving.slo import SLOTracker
from ..serving.tenants import Tenant, TenantSet

#: Node-queue request lifecycle (the steal-safety invariant is stated
#: over these): routed -> queued | held -> dispatched -> done, or shed.
REQUEST_STATES = ("routed", "queued", "held", "dispatched", "done", "shed")


@dataclass
class NodeConfig:
    """Knobs of one fleet node (mirrors ServingConfig where they meet)."""

    mode: str = "flep-spatial"
    #: Scheduling policy for the FLEP modes (EDF = deadline-aware).
    policy: str = "edf"
    #: Admission control on/off; ``None`` picks the mode's default
    #: (on for FLEP, off for MPS — same rule as the serving layer).
    admission: Optional[bool] = None
    delay_headroom: float = 0.5
    oracle_model: bool = False
    seed: Optional[int] = None
    #: Requests dispatched into the backend runtime at once; the rest
    #: wait in the (stealable) node queue.
    max_inflight: int = 4

    def __post_init__(self):
        if self.mode not in MODES:
            raise FleetError(f"unknown node mode {self.mode!r} (have {MODES})")
        if self.max_inflight < 1:
            raise FleetError("max_inflight must be >= 1")

    @property
    def admission_enabled(self) -> bool:
        if self.admission is not None:
            return self.admission
        return self.mode != "mps"


@dataclass
class NodeRequest:
    """One routed request as the fleet layer tracks it."""

    req_id: int
    tenant: Tenant
    kernel: str
    input_name: str
    #: Fleet-time arrival (when the dispatcher routed it).
    arrived_us: float
    predicted_us: float
    #: Absolute completion deadline (µs); ``None`` = best-effort.
    deadline_us: Optional[float] = None
    state: str = "routed"
    #: Index of the node currently owning the request.
    node: Optional[int] = None
    #: Times this request was migrated by the work stealer.
    steals: int = 0
    #: Node that actually completed it (for per-node attribution).
    completed_node: Optional[int] = None


@dataclass
class NodeStats:
    """Per-node counters the rollup aggregates."""

    routed: int = 0
    dispatched: int = 0
    completed: int = 0
    shed: int = 0
    delayed: int = 0
    stolen_in: int = 0
    stolen_out: int = 0
    peak_queue: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


class FleetNode:
    """One simulated GPU + queue manager inside the fleet."""

    def __init__(
        self,
        index: int,
        tenants: TenantSet,
        config: Optional[NodeConfig] = None,
        tracker: Optional[SLOTracker] = None,
        device=None,
        suite=None,
        hooks: Optional[List] = None,
    ):
        self.index = index
        self.tenants = tenants
        self.config = config or NodeConfig()
        mode = self.config.mode
        if mode == "mps":
            self.backend = MPSCoRun(
                device=device, suite=suite, seed=self.config.seed
            )
            self.system: Optional[FlepSystem] = None
        else:
            self.system = FlepSystem(
                policy=self.config.policy,
                device=device,
                suite=suite,
                config=RuntimeConfig(
                    spatial_enabled=(mode == "flep-spatial"),
                    oracle_model=self.config.oracle_model,
                ),
                seed=self.config.seed,
            )
            self.backend = self.system
        self.sim = self.backend.sim
        #: Fleet-shared tracker (the dispatcher owns it); a standalone
        #: node builds its own so it stays usable in isolation/tests.
        self.tracker = tracker if tracker is not None else SLOTracker(tenants)
        # Rate limiting is a *front-door* concern (a per-node bucket
        # would multiply every tenant's budget by the fleet size), so
        # node-level admission sees tenants without their rate limits.
        self.admission = AdmissionController(
            TenantSet([replace(t, rate_limit_rps=None) for t in tenants]),
            delay_headroom=self.config.delay_headroom,
        )
        #: dispatcher-owned hook list (monitors, metrics); shared object.
        self.hooks: List = hooks if hooks is not None else []
        self.queue: Deque[NodeRequest] = deque()
        self.inflight: Dict[int, NodeRequest] = {}
        self.stats = NodeStats()
        self._backlog_us: Dict[int, float] = {}

    # ------------------------------------------------------------------
    # clock control (dispatcher only)
    # ------------------------------------------------------------------
    def advance(self, until: float) -> None:
        """Run this node's simulator up to fleet time ``until``.

        Idle nodes (empty event queue) have their clock moved forward
        explicitly so a request routed at ``until`` is stamped at the
        fleet time, not at whenever the node last had work.
        """
        if until < self.sim.now:
            return
        self.sim.run(until=until)
        if self.sim.now < until:
            self.sim.clock.advance_to(until)

    def drain(self) -> None:
        """Run this node to completion (no more control points)."""
        self.sim.run()

    @property
    def idle(self) -> bool:
        return not self.queue and not self.inflight and self.sim.pending() == 0

    # ------------------------------------------------------------------
    # load introspection (read-only; the routing-policy contract)
    # ------------------------------------------------------------------
    def queued_us(self) -> float:
        return sum(r.predicted_us for r in self.queue)

    def inflight_us(self) -> float:
        return sum(r.predicted_us for r in self.inflight.values())

    def load_us(self) -> float:
        """Admitted-but-unfinished predicted work on this node (µs)."""
        return sum(self._backlog_us.values())

    def backlog_for(self, priority: int) -> float:
        """Backlog served at or above ``priority`` — under FLEP lower
        priority work is preempted out of the way; under MPS everything
        queues FIFO, so the whole backlog counts (same rule as
        :meth:`repro.serving.server.ServingSystem.backlog_us`)."""
        if self.config.mode == "mps":
            return sum(self._backlog_us.values())
        return sum(us for p, us in self._backlog_us.items() if p >= priority)

    @property
    def queue_len(self) -> int:
        return len(self.queue)

    # ------------------------------------------------------------------
    # request intake
    # ------------------------------------------------------------------
    def enqueue(self, req: NodeRequest) -> None:
        """Accept one routed request at the node's current clock."""
        if req.state != "routed":
            raise FleetError(
                f"request #{req.req_id} enqueued in state {req.state!r}"
            )
        req.node = self.index
        self.stats.routed += 1
        if not self.config.admission_enabled:
            self._accept(req)
            return
        verdict = self.admission.decide(
            req.tenant, self.sim.now, req.predicted_us,
            self.backlog_for(req.tenant.priority),
        )
        if verdict.decision is Decision.SHED:
            req.state = "shed"
            self.stats.shed += 1
            self.tracker.mark_shed(req.req_id)
            self._notify("on_resolve", req, self.index)
        elif verdict.decision is Decision.DELAY:
            req.state = "held"
            self.stats.delayed += 1
            self.tracker.mark_delayed(req.req_id)
            self.sim.schedule(
                verdict.hold_us, lambda: self._accept(req),
                label=f"fleet-delay:n{self.index}",
            )
        else:
            self._accept(req)

    def _accept(self, req: NodeRequest) -> None:
        """Admitted: join the (stealable) node queue and pump."""
        req.state = "queued"
        req.node = self.index
        p = req.tenant.priority
        self._backlog_us[p] = self._backlog_us.get(p, 0.0) + req.predicted_us
        self.queue.append(req)
        if len(self.queue) > self.stats.peak_queue:
            self.stats.peak_queue = len(self.queue)
        self._pump()

    # ------------------------------------------------------------------
    # work stealing (dispatcher's rebalancer only)
    # ------------------------------------------------------------------
    def peek_tail(self) -> Optional[NodeRequest]:
        """The most recently queued request — the steal candidate."""
        return self.queue[-1] if self.queue else None

    def take(self, req: NodeRequest) -> NodeRequest:
        """Remove a **queued** request for migration to another node.

        Raises :class:`FleetError` for any request the node no longer
        controls — dispatched, held, or resolved work is never migrated
        (the fleet conformance monitor re-checks this independently).
        """
        if req.state != "queued":
            raise FleetError(
                f"cannot steal request #{req.req_id}: state is "
                f"{req.state!r}, only queued requests migrate"
            )
        if req.req_id in self.inflight:
            raise FleetError(
                f"cannot steal request #{req.req_id}: dispatched on "
                f"node {self.index}"
            )
        try:
            self.queue.remove(req)
        except ValueError:
            raise FleetError(
                f"request #{req.req_id} is not queued on node {self.index}"
            ) from None
        p = req.tenant.priority
        self._backlog_us[p] = max(
            0.0, self._backlog_us.get(p, 0.0) - req.predicted_us
        )
        req.state = "routed"
        req.node = None
        self.stats.stolen_out += 1
        return req

    def accept_stolen(self, req: NodeRequest) -> None:
        """Take over a migrated request (no re-admission: it was already
        admitted by the node that first accepted it)."""
        if req.state != "routed":
            raise FleetError(
                f"stolen request #{req.req_id} arrives in state {req.state!r}"
            )
        req.steals += 1
        self.stats.stolen_in += 1
        self._accept(req)

    # ------------------------------------------------------------------
    # dispatch into the backend
    # ------------------------------------------------------------------
    def _pump(self) -> None:
        while self.queue and len(self.inflight) < self.config.max_inflight:
            req = self.queue.popleft()
            self._dispatch(req)

    def _dispatch(self, req: NodeRequest) -> None:
        req.state = "dispatched"
        self.inflight[req.req_id] = req
        self.stats.dispatched += 1
        self._notify("on_dispatch", req, self.index)
        tenant = req.tenant
        if self.system is not None:
            self.system.runtime.submit(
                process=tenant.name,
                kernel=req.kernel,
                input_name=req.input_name,
                priority=tenant.priority,
                tenant=tenant.name,
                deadline_us=req.deadline_us,
                on_finished=lambda inv, req=req: self._on_complete(req),
            )
        else:
            self.backend.submit_at(
                self.sim.now,
                f"{tenant.name}#{req.req_id}",
                req.kernel,
                req.input_name,
                on_done=lambda req=req: self._on_complete(req),
            )

    def _on_complete(self, req: NodeRequest) -> None:
        req.state = "done"
        req.completed_node = self.index
        del self.inflight[req.req_id]
        p = req.tenant.priority
        self._backlog_us[p] = max(
            0.0, self._backlog_us.get(p, 0.0) - req.predicted_us
        )
        self.stats.completed += 1
        self.tracker.mark_completed(req.req_id, self.sim.now)
        self._notify("on_resolve", req, self.index)
        self._pump()

    # ------------------------------------------------------------------
    def _notify(self, event: str, *args) -> None:
        for hook in self.hooks:
            getattr(hook, event)(*args)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FleetNode#{self.index}({self.config.mode}, "
            f"now={self.sim.now:.0f}us, queue={len(self.queue)}, "
            f"inflight={len(self.inflight)})"
        )
