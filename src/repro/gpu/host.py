"""Host-process programs (pure data).

A :class:`HostProgram` is the CPU side of a GPU application: an ordered
script of host compute, transfers and kernel invocations, plus a process
priority. Executors interpret these programs:

* :class:`repro.baselines.mps_corun.MPSExecutor` — the untransformed
  program running under plain MPS (the paper's baseline),
* :class:`repro.core.flep.FlepSystem` — the FLEP-transformed program
  whose launches are intercepted by the runtime (Figure 5's state
  machine lives in :mod:`repro.core.interception`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from ..errors import WorkloadError


@dataclass(frozen=True)
class HostCompute:
    """CPU-side work (data prep / post-processing) of a given duration."""

    duration_us: float

    def __post_init__(self):
        if self.duration_us < 0:
            raise WorkloadError("host compute duration cannot be negative")


@dataclass(frozen=True)
class CopyToDevice:
    nbytes: int


@dataclass(frozen=True)
class CopyToHost:
    nbytes: int


@dataclass(frozen=True)
class KernelInvoke:
    """Invoke the named kernel on the named input.

    ``kernel`` and ``input_name`` are resolved against a
    :class:`repro.workloads.benchmarks.BenchmarkSuite` by the executor.
    """

    kernel: str
    input_name: str = "large"
    repeats: int = 1

    def __post_init__(self):
        if self.repeats < 1:
            raise WorkloadError("kernel invocation repeats must be >= 1")


HostOp = Union[HostCompute, CopyToDevice, CopyToHost, KernelInvoke]


@dataclass
class HostProgram:
    """One CPU process that offloads kernels to the GPU."""

    name: str
    ops: List[HostOp] = field(default_factory=list)
    priority: int = 0           # higher value = higher priority
    loop_forever: bool = False  # FFS experiments re-invoke in a loop

    def kernels(self) -> Sequence[KernelInvoke]:
        return [op for op in self.ops if isinstance(op, KernelInvoke)]

    @staticmethod
    def single_kernel(
        name: str,
        kernel: str,
        input_name: str,
        priority: int = 0,
        start_delay_us: float = 0.0,
        loop_forever: bool = False,
    ) -> "HostProgram":
        """The shape used throughout the paper's evaluation: optional
        delay, then one kernel invocation."""
        ops: List[HostOp] = []
        if start_delay_us > 0:
            ops.append(HostCompute(start_delay_us))
        ops.append(KernelInvoke(kernel, input_name))
        return HostProgram(
            name=name, ops=ops, priority=priority, loop_forever=loop_forever
        )
