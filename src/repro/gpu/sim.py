"""Discrete-event simulation engine.

A thin, deterministic event loop over a binary heap (or, optionally, a
bucketed calendar queue — see :mod:`repro.gpu.calendar`). The engine is
the single owner of simulated time; all GPU/host components schedule
callbacks through it. Determinism matters because the experiment harness
averages repeated runs that differ only by seeded RNG noise.

The run loop is the hottest code in the repository, so it is written in
a deliberately low-level style (see DESIGN.md §12 for the invariants it
must preserve): one head inspection per iteration, instrumentation
behind a single ``_hooked`` flag, and direct clock/counter stores
instead of property and method calls. The semantically-equivalent
reference loop (``use_reference_loop``) is kept for differential
testing against the fast path.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from ..errors import SimulationError
from ..obs.profiler import NULL_PROFILER
from ..obs.recorder import NULL_OBS
from .clock import Clock
from .events import Event, EventHandle

_EVENT_NEW = Event.__new__


class EventLoopStats:
    """The engine's one set of event-loop counters.

    A single instance per :class:`Simulator` is the shared source of
    truth for event accounting: the ``max_events`` exhaustion check, the
    ``processed_events`` property, and the self-profiler
    (:class:`repro.obs.profiler.SimProfiler`) all read the same fields,
    so there is no double bookkeeping between diagnostics and profiling.
    """

    __slots__ = ("processed", "scheduled", "cancelled", "peak_pending")

    def __init__(self):
        self.processed = 0       # events executed (cancelled pops excluded)
        self.scheduled = 0       # events ever pushed onto the heap
        self.cancelled = 0       # cancelled events dropped at the head
        self.peak_pending = 0    # high-water mark of the heap length

    def as_dict(self) -> dict:
        """Plain-data snapshot for reports and the `engine` JSON block."""
        return {
            "processed": self.processed,
            "scheduled": self.scheduled,
            "cancelled": self.cancelled,
            "peak_pending": self.peak_pending,
        }


class Simulator:
    """Deterministic discrete-event engine (time unit: microseconds).

    ``queue`` selects the event-queue structure: ``"heap"`` (default,
    one binary heap) or ``"calendar"`` (bucketed calendar queue, for
    high-fanout scenarios with many far-future events). Both produce
    bit-identical schedules; only wall-clock behaviour differs.
    """

    #: When True, ``run()`` uses the step-by-step reference loop instead
    #: of the inlined fast path. The schedule-identity tests flip this to
    #: prove the fast loop preserves schedules exactly. It also disables
    #: macro-event fast-forward, so the reference engine is the
    #: one-event-per-batch loop the golden traces are checked against.
    use_reference_loop = False

    #: When True (default), persistent grids in steady state collapse
    #: their batch chains into macro events (repro.gpu.macro): the
    #: claim/complete interleaving is precomputed and only externally
    #: visible transitions (context finish/yield, grid terminal) remain
    #: real events. Kernel-level timelines stay bit-identical; raw
    #: event counts legitimately shrink.
    macro_events = True

    def __init__(
        self,
        start_time: float = 0.0,
        max_events: int = 50_000_000,
        queue: str = "heap",
        bucket_us: Optional[float] = None,
    ):
        self.clock = Clock(start_time)
        #: heap of ``(time, priority, seq, Event)`` entries. The seq is
        #: unique per engine, so ties never reach the Event field and
        #: every comparison is a C-level tuple compare — no Python
        #: ``__lt__`` frames on the hot path.
        self._heap: List[tuple] = []
        if queue == "heap":
            if bucket_us is not None:
                raise SimulationError("bucket_us only applies to queue='calendar'")
            self._cal = None
        elif queue == "calendar":
            from .calendar import CalendarQueue

            self._cal = (
                CalendarQueue() if bucket_us is None else CalendarQueue(bucket_us)
            )
        else:
            raise SimulationError(
                f"unknown queue kind {queue!r} (have 'heap', 'calendar')"
            )
        self._seq = 0
        #: cancelled-but-not-yet-popped events still in the queue; makes
        #: ``pending()`` O(1) (maintained by Event.cancel via ``_q``)
        self._dead = 0
        self.stats = EventLoopStats()
        self._max_events = max_events
        self._running = False
        self._trace: Optional[Callable[[Event], None]] = None
        #: observability recorder (repro.obs); the shared null recorder
        #: keeps the per-event cost to one flag check when disabled
        self._obs = NULL_OBS
        #: hot-path self-profiler (repro.obs.profiler); same null/guard
        #: pattern as ``obs``
        self._prof = NULL_PROFILER
        #: single is-anything-installed flag the run loop branches on;
        #: refreshed whenever trace/obs/prof are (un)installed
        self._hooked = _GLOBAL_TRACE is not None
        if _GLOBAL_TRACE is not None:
            self._trace = _GLOBAL_TRACE

    # ------------------------------------------------------------------
    # instrumentation wiring (rare: assignment refreshes the hot flag)
    # ------------------------------------------------------------------
    @property
    def obs(self):
        return self._obs

    @obs.setter
    def obs(self, hub) -> None:
        self._obs = hub
        self._refresh_hooked()

    @property
    def prof(self):
        return self._prof

    @prof.setter
    def prof(self, prof) -> None:
        self._prof = prof
        self._refresh_hooked()

    def set_trace(self, fn: Optional[Callable[[Event], None]]) -> None:
        """Install a hook called with each event just before it fires."""
        self._trace = fn
        self._refresh_hooked()

    def _refresh_hooked(self) -> None:
        self._hooked = (
            self._trace is not None
            or self._obs.enabled
            or self._prof.enabled
        )

    # ------------------------------------------------------------------
    # scheduling API
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.clock._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far (cancelled pops not counted)."""
        return self.stats.processed

    @property
    def max_events(self) -> int:
        """Event budget before the engine declares a runaway loop."""
        return self._max_events

    @max_events.setter
    def max_events(self, value: int) -> None:
        if value <= 0:
            raise SimulationError(f"max_events must be positive, got {value}")
        self._max_events = value

    def schedule(
        self,
        delay: float,
        callback: Callable[[], Any],
        label: str = "",
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` microseconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(
            self.clock._now + delay, callback, label, priority
        )

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], Any],
        label: str = "",
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback`` at absolute simulated time ``time``."""
        return EventHandle(self.schedule_event(time, callback, label, priority))

    def schedule_event(
        self,
        time: float,
        callback: Callable[[], Any],
        label: str = "",
        priority: int = 0,
    ) -> Event:
        """Fast-path variant of :meth:`schedule_at` returning the raw
        :class:`Event` (no handle wrapper). Same validation, ordering and
        accounting; internal hot callers (the CTA batch loop) use this to
        skip one allocation per scheduled event."""
        if time < self.clock._now:
            raise SimulationError(
                f"cannot schedule at {time} before now={self.now}"
            )
        seq = self._seq = self._seq + 1
        # build the Event with direct slot stores — this allocator runs
        # once per scheduled event, and the __init__ frame is pure cost
        ev = _EVENT_NEW(Event)
        ev.time = time
        ev.priority = priority
        ev.seq = seq
        ev.callback = callback
        ev.label = label
        ev.cancelled = False
        ev._q = self
        cal = self._cal
        if cal is None:
            heapq.heappush(self._heap, (time, priority, seq, ev))
            depth = len(self._heap)
        else:
            cal.push(time, priority, seq, ev)
            depth = len(cal)
        st = self.stats
        st.scheduled += 1
        if depth > st.peak_pending:
            st.peak_pending = depth
        return ev

    def call_soon(
        self, callback: Callable[[], Any], label: str = "", priority: int = 0
    ) -> EventHandle:
        """Schedule ``callback`` at the current time (after pending same-time
        events of lower sequence)."""
        return self.schedule_at(self.clock._now, callback, label, priority)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def pending(self) -> int:
        """Number of not-yet-fired, not-cancelled events. O(1): queue
        length minus the incrementally-maintained dead-event count."""
        cal = self._cal
        depth = len(self._heap) if cal is None else len(cal)
        return depth - self._dead

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if the queue is idle."""
        self._drop_cancelled_head()
        ev = self._peek_ev()
        return ev.time if ev is not None else None

    def step(self) -> bool:
        """Execute the next live event. Returns ``False`` when idle.

        This is the engine's *reference* path — semantically identical
        to one iteration of the fast ``run()`` loop, kept for external
        single-stepping and differential tests.
        """
        self._drop_cancelled_head()
        ev = self._pop_ev()
        if ev is None:
            return False
        ev._q = None
        self.clock.advance_to(ev.time)
        st = self.stats
        st.processed += 1
        if st.processed > self._max_events:
            raise SimulationError(self._exhaustion_diagnostics(ev))
        if self._hooked:
            self._fire_hooks(ev)
        ev.callback()
        return True

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or ``until`` is reached.

        Returns the final simulated time. When ``until`` is given and
        events remain beyond it, the clock is advanced exactly to
        ``until``.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        if self._cal is not None or self.use_reference_loop:
            return self._run_reference(until)
        self._running = True
        # Fast path: locals for everything touched per iteration, one
        # head inspection per event, direct clock/counter stores. The
        # heap order guarantees popped times are non-decreasing and
        # schedule_at rejects the past, so the clock store needs no
        # monotonicity re-check (DESIGN.md §12).
        heap = self._heap
        pop = heapq.heappop
        clock = self.clock
        st = self.stats
        max_events = self._max_events
        limit = float("inf") if until is None else until
        # processed count kept in a local; everything that reads it
        # (profiler engine block, harness, diagnostics) runs after the
        # loop exits, and the finally below syncs it even on raise
        processed = st.processed
        try:
            while heap:
                head = heap[0]
                ev = head[3]
                if ev.cancelled:
                    pop(heap)
                    ev._q = None
                    self._dead -= 1
                    st.cancelled += 1
                    continue
                t = head[0]
                if t > limit:
                    clock.advance_to(until)
                    break
                pop(heap)
                ev._q = None
                clock._now = t
                processed += 1
                if processed > max_events:
                    st.processed = processed
                    raise SimulationError(self._exhaustion_diagnostics(ev))
                if self._hooked:
                    # _fire_hooks inlined: hooks may be (re)installed by a
                    # callback mid-run, so each is re-read per event
                    trace = self._trace
                    if trace is not None:
                        trace(ev)
                    obs = self._obs
                    if obs.enabled:
                        obs.sim_event(ev.label)
                    prof = self._prof
                    if prof.enabled:
                        prof.on_event(ev.label, len(heap))
                ev.callback()
        finally:
            st.processed = processed
            self._running = False
        return clock._now

    def _run_reference(self, until: Optional[float]) -> float:
        """Step-by-step loop: one peek + one step per event. Used for the
        calendar queue and as the differential reference for the fast
        heap loop (``use_reference_loop``)."""
        self._running = True
        try:
            while True:
                nxt = self.peek_time()
                if nxt is None:
                    break
                if until is not None and nxt > until:
                    self.clock.advance_to(until)
                    break
                self.step()
        finally:
            self._running = False
        return self.clock._now

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _fire_hooks(self, ev: Event) -> None:
        """Slow path: deliver ``ev`` to whichever hooks are installed."""
        if self._trace is not None:
            self._trace(ev)
        if self._obs.enabled:
            self._obs.sim_event(ev.label)
        if self._prof.enabled:
            depth = len(self._heap) if self._cal is None else len(self._cal)
            self._prof.on_event(ev.label, depth)

    def _peek_ev(self) -> Optional[Event]:
        cal = self._cal
        if cal is None:
            heap = self._heap
            return heap[0][3] if heap else None
        return cal.peek()

    def _pop_ev(self) -> Optional[Event]:
        cal = self._cal
        if cal is None:
            heap = self._heap
            return heapq.heappop(heap)[3] if heap else None
        return cal.pop() if len(cal) else None

    def _live_events_sorted(self, n: int) -> List[Event]:
        """The ``n`` soonest live events (diagnostics only; O(pending))."""
        if self._cal is None:
            live = (en for en in self._heap if not en[3].cancelled)
        else:
            live = (
                en
                for bucket in (*self._cal._buckets.values(), self._cal._overflow)
                for en in bucket
                if not en[3].cancelled
            )
        return [en[3] for en in heapq.nsmallest(n, live)]

    def _exhaustion_diagnostics(self, current: Event) -> str:
        """Diagnostic message for a blown event budget: what was running,
        how much is still queued, and which events come next."""
        # filter cancelled *before* truncating so the preview really is
        # the next 5 live events, not fewer
        live = self._live_events_sorted(5)
        heads = ", ".join(
            f"{e.label or '<unlabelled>'}@{e.time:.3f}us" for e in live
        ) or "<none>"
        return (
            f"event budget exceeded ({self._max_events} events) at "
            f"t={self.now:.3f}us while firing "
            f"{current.label or '<unlabelled>'!r}; "
            f"pending={self.pending()}, next events: [{heads}]; "
            "likely a runaway scheduling loop (raise Simulator.max_events "
            "if the workload is legitimately this large)"
        )

    def _drop_cancelled_head(self) -> None:
        st = self.stats
        if self._cal is None:
            heap = self._heap
            while heap and heap[0][3].cancelled:
                heapq.heappop(heap)[3]._q = None
                self._dead -= 1
                st.cancelled += 1
        else:
            cal = self._cal
            while True:
                ev = cal.peek()
                if ev is None or not ev.cancelled:
                    break
                cal.pop()._q = None
                self._dead -= 1
                st.cancelled += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={self.now:.3f}us, pending={self.pending()}, "
            f"processed={self.stats.processed})"
        )


# ---------------------------------------------------------------------------
# process-global trace hook (mirrors the global obs hub / profiler: lets
# harnesses capture every simulator a scenario builds internally)
# ---------------------------------------------------------------------------
_GLOBAL_TRACE: Optional[Callable[[Event], None]] = None


def install_global_trace(fn: Optional[Callable[[Event], None]]) -> None:
    """Make ``fn`` the initial trace hook of every *new* Simulator
    (``None`` uninstalls). Existing simulators are unaffected; the
    schedule-identity tests use this to record event streams from
    simulators that scenarios construct internally."""
    global _GLOBAL_TRACE
    _GLOBAL_TRACE = fn
