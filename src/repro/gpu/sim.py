"""Discrete-event simulation engine.

A thin, deterministic event loop over a binary heap. The engine is the
single owner of simulated time; all GPU/host components schedule callbacks
through it. Determinism matters because the experiment harness averages
repeated runs that differ only by seeded RNG noise.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from ..errors import SimulationError
from ..obs.profiler import NULL_PROFILER
from ..obs.recorder import NULL_OBS
from .clock import Clock
from .events import Event, EventHandle


class EventLoopStats:
    """The engine's one set of event-loop counters.

    A single instance per :class:`Simulator` is the shared source of
    truth for event accounting: the ``max_events`` exhaustion check, the
    ``processed_events`` property, and the self-profiler
    (:class:`repro.obs.profiler.SimProfiler`) all read the same fields,
    so there is no double bookkeeping between diagnostics and profiling.
    """

    __slots__ = ("processed", "scheduled", "cancelled", "peak_pending")

    def __init__(self):
        self.processed = 0       # events executed (cancelled pops excluded)
        self.scheduled = 0       # events ever pushed onto the heap
        self.cancelled = 0       # cancelled events dropped at the head
        self.peak_pending = 0    # high-water mark of the heap length

    def as_dict(self) -> dict:
        """Plain-data snapshot for reports and the `engine` JSON block."""
        return {
            "processed": self.processed,
            "scheduled": self.scheduled,
            "cancelled": self.cancelled,
            "peak_pending": self.peak_pending,
        }


class Simulator:
    """Deterministic discrete-event engine (time unit: microseconds)."""

    def __init__(self, start_time: float = 0.0, max_events: int = 50_000_000):
        self.clock = Clock(start_time)
        self._heap: List[Event] = []
        self._seq = 0
        self.stats = EventLoopStats()
        self._max_events = max_events
        self._running = False
        self._trace: Optional[Callable[[Event], None]] = None
        #: observability recorder (repro.obs); the shared null recorder
        #: keeps the per-event cost to one attribute check when disabled
        self.obs = NULL_OBS
        #: hot-path self-profiler (repro.obs.profiler); same null/guard
        #: pattern as ``obs`` — one attribute check when uninstalled
        self.prof = NULL_PROFILER

    # ------------------------------------------------------------------
    # scheduling API
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.clock.now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far (cancelled pops not counted)."""
        return self.stats.processed

    @property
    def max_events(self) -> int:
        """Event budget before the engine declares a runaway loop."""
        return self._max_events

    @max_events.setter
    def max_events(self, value: int) -> None:
        if value <= 0:
            raise SimulationError(f"max_events must be positive, got {value}")
        self._max_events = value

    def schedule(
        self,
        delay: float,
        callback: Callable[[], Any],
        label: str = "",
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` microseconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self.now + delay, callback, label, priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], Any],
        label: str = "",
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback`` at absolute simulated time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} before now={self.now}"
            )
        self._seq += 1
        ev = Event(time, self._seq, callback, label=label, priority=priority)
        heapq.heappush(self._heap, ev)
        st = self.stats
        st.scheduled += 1
        depth = len(self._heap)
        if depth > st.peak_pending:
            st.peak_pending = depth
        return EventHandle(ev)

    def call_soon(
        self, callback: Callable[[], Any], label: str = "", priority: int = 0
    ) -> EventHandle:
        """Schedule ``callback`` at the current time (after pending same-time
        events of lower sequence)."""
        return self.schedule_at(self.now, callback, label, priority)

    def set_trace(self, fn: Optional[Callable[[Event], None]]) -> None:
        """Install a hook called with each event just before it fires."""
        self._trace = fn

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def pending(self) -> int:
        """Number of not-yet-fired, not-cancelled events."""
        return sum(1 for e in self._heap if not e.cancelled)

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if the queue is idle."""
        self._drop_cancelled_head()
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Execute the next live event. Returns ``False`` when idle."""
        self._drop_cancelled_head()
        if not self._heap:
            return False
        ev = heapq.heappop(self._heap)
        self.clock.advance_to(ev.time)
        st = self.stats
        st.processed += 1
        if st.processed > self._max_events:
            raise SimulationError(self._exhaustion_diagnostics(ev))
        if self._trace is not None:
            self._trace(ev)
        if self.obs.enabled:
            self.obs.sim_event(ev.label)
        if self.prof.enabled:
            self.prof.on_event(ev.label, len(self._heap))
        ev.callback()
        return True

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or ``until`` is reached.

        Returns the final simulated time. When ``until`` is given and
        events remain beyond it, the clock is advanced exactly to
        ``until``.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        try:
            while True:
                nxt = self.peek_time()
                if nxt is None:
                    break
                if until is not None and nxt > until:
                    self.clock.advance_to(until)
                    break
                self.step()
        finally:
            self._running = False
        return self.now

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _exhaustion_diagnostics(self, current: Event) -> str:
        """Diagnostic message for a blown event budget: what was running,
        how much is still queued, and which events come next."""
        live = [e for e in heapq.nsmallest(6, self._heap) if not e.cancelled]
        heads = ", ".join(
            f"{e.label or '<unlabelled>'}@{e.time:.3f}us" for e in live[:5]
        ) or "<none>"
        return (
            f"event budget exceeded ({self._max_events} events) at "
            f"t={self.now:.3f}us while firing "
            f"{current.label or '<unlabelled>'!r}; "
            f"pending={self.pending()}, next events: [{heads}]; "
            "likely a runaway scheduling loop (raise Simulator.max_events "
            "if the workload is legitimately this large)"
        )

    def _drop_cancelled_head(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
            self.stats.cancelled += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={self.now:.3f}us, pending={len(self._heap)}, "
            f"processed={self.stats.processed})"
        )
