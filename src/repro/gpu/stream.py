"""CUDA streams: per-context command FIFOs.

Commands in one stream execute strictly in order (§2.1); commands in
different streams may overlap subject to device resources. A stream
issues its next command only when the previous one has fully completed —
this is what serializes back-to-back kernels from the same process and
what makes kernel slicing's per-slice launch overhead visible.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from ..errors import SimulationError
from .gpu import SimulatedGPU
from .grid import Grid
from .kernel import KernelImage, LaunchConfig, TaskPool
from .memory import PinnedFlag
from .transfer import DMAEngine, Direction


class Stream:
    """One in-order command queue bound to a device."""

    _next_id = 1

    def __init__(self, gpu: SimulatedGPU, dma: Optional[DMAEngine] = None,
                 name: str = ""):
        self.gpu = gpu
        self.sim = gpu.sim
        self.dma = dma or DMAEngine(gpu.sim, gpu.spec.costs)
        self.stream_id = Stream._next_id
        Stream._next_id += 1
        self.name = name or f"stream{self.stream_id}"
        self._commands: Deque[Callable[[Callable[[], None]], None]] = deque()
        self._busy = False

    # ------------------------------------------------------------------
    # command enqueue API
    # ------------------------------------------------------------------
    def enqueue_kernel(
        self,
        kernel: KernelImage,
        config: LaunchConfig,
        pool: Optional[TaskPool] = None,
        flag: Optional[PinnedFlag] = None,
        tag: Optional[dict] = None,
        on_grid: Optional[Callable[[Grid], None]] = None,
        on_done: Optional[Callable[[Grid], None]] = None,
    ) -> None:
        """Enqueue a kernel launch.

        ``on_grid`` receives the :class:`Grid` as soon as the launch
        command issues; ``on_done`` fires when the grid completes *or* is
        preempted (either way, the stream advances).
        """

        def run(advance: Callable[[], None]) -> None:
            def _finished(grid: Grid) -> None:
                if on_done:
                    on_done(grid)
                advance()

            grid = self.gpu.launch(
                kernel,
                config,
                pool=pool,
                flag=flag,
                tag=dict(tag or {}, stream=self.name),
                on_complete=_finished,
                on_preempted=_finished,
            )
            if on_grid:
                on_grid(grid)

        self._push(run)

    def enqueue_transfer(
        self,
        direction: Direction,
        nbytes: int,
        on_done: Optional[Callable[[], None]] = None,
    ) -> None:
        def run(advance: Callable[[], None]) -> None:
            def _finished() -> None:
                if on_done:
                    on_done()
                advance()

            self.dma.copy(direction, nbytes, _finished)

        self._push(run)

    def enqueue_callback(self, fn: Callable[[], None]) -> None:
        """Host-side callback; executes in order with zero duration."""

        def run(advance: Callable[[], None]) -> None:
            fn()
            advance()

        self._push(run)

    def enqueue_delay(self, duration_us: float) -> None:
        """An artificial in-stream delay (used by experiment harnesses)."""
        if duration_us < 0:
            raise SimulationError("delay cannot be negative")

        def run(advance: Callable[[], None]) -> None:
            self.sim.schedule(duration_us, advance, label=f"{self.name}:delay")

        self._push(run)

    @property
    def idle(self) -> bool:
        return not self._busy and not self._commands

    # ------------------------------------------------------------------
    def _push(self, cmd) -> None:
        self._commands.append(cmd)
        if not self._busy:
            self._issue_next()

    def _issue_next(self) -> None:
        if not self._commands:
            self._busy = False
            return
        self._busy = True
        cmd = self._commands.popleft()
        advanced = []

        def advance() -> None:
            if advanced:
                raise SimulationError(f"stream {self.name}: command advanced twice")
            advanced.append(True)
            self._issue_next()

        cmd(advance)
