"""Device memory and pinned host memory.

Two pieces matter to FLEP:

* :class:`DeviceMemory` — a byte-counting allocator for the 12 GB device
  memory. The paper assumes combined working sets fit (§8 related work
  discusses GPUSwap for the rest), so we only track capacity and fail
  loudly on oversubscription.
* :class:`PinnedFlag` — the ``temp_P`` / ``spa_P`` cell in pinned
  (non-pageable) host memory that the CPU writes and the GPU polls. The
  simulator models the write-to-visibility latency and notifies grid
  contexts so they can re-plan their yield events.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Callable, Dict, List, Tuple

from ..errors import MemoryError_, SimulationError
from .sim import Simulator

#: Sentinel larger than any flag value, for bisecting ``(time, value)``
#: histories by time alone (ties resolve to the *latest* same-time write,
#: matching the linear scan the bisect replaced).
_VALUE_INF = float("inf")


class DeviceMemory:
    """Byte-granular device memory allocator with named allocations."""

    def __init__(self, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise MemoryError_("device memory capacity must be positive")
        self.capacity = capacity_bytes
        self._used = 0
        self._allocs: Dict[int, Tuple[str, int]] = {}
        self._next_id = 1

    @property
    def used(self) -> int:
        return self._used

    @property
    def free(self) -> int:
        return self.capacity - self._used

    def alloc(self, nbytes: int, label: str = "") -> int:
        """Allocate ``nbytes``; returns an allocation handle."""
        if nbytes < 0:
            raise MemoryError_(f"negative allocation {nbytes}")
        if nbytes > self.free:
            raise MemoryError_(
                f"device OOM: requested {nbytes} bytes, {self.free} free "
                f"(working set does not fit; see paper §8 / GPUSwap)"
            )
        handle = self._next_id
        self._next_id += 1
        self._allocs[handle] = (label, nbytes)
        self._used += nbytes
        return handle

    def free_alloc(self, handle: int) -> None:
        if handle not in self._allocs:
            raise MemoryError_(f"double free or unknown handle {handle}")
        _, nbytes = self._allocs.pop(handle)
        self._used -= nbytes

    def reset(self) -> None:
        self._allocs.clear()
        self._used = 0


class PinnedFlag:
    """A preemption flag shared between CPU and GPU (pinned memory).

    Encodes both of the paper's flags with one unsigned value ``v``:

    * ``v == 0`` — run normally.
    * ``v >= 1`` — yield: a CTA hosted on SM ``s`` must quit iff
      ``s < v`` (Figure 4 (c)). Setting ``v >= num_sms`` is exactly
      temporal preemption (yield everything); kernels compiled without
      spatial support treat any non-zero value as "yield all".

    Host writes become visible to device polls after
    ``preempt_signal_us``; device reads cost ``pinned_poll_us`` (charged
    by the CTA contexts, not here).
    """

    def __init__(self, sim: Simulator, signal_latency_us: float = 1.0):
        self._sim = sim
        self._latency = signal_latency_us
        # (visible_from_time, value), newest last; always non-empty
        self._history: List[Tuple[float, int]] = [(0.0, 0)]
        #: index of writes with ``value > 0`` (same order as _history).
        #: Empty means no visible value can ever demand a yield — the
        #: CTA batch loop's fast path checks only this before skipping
        #: the whole yield-poll search.
        self._demanding: List[Tuple[float, int]] = []
        self._watchers: List[Callable[[float, int], None]] = []

    # -- host side -------------------------------------------------------
    def host_write(self, value: int) -> None:
        """CPU writes ``value``; device sees it after the signal latency."""
        if value < 0:
            raise SimulationError(f"flag value cannot be negative: {value}")
        visible_at = self._sim.now + self._latency
        self._history.append((visible_at, value))
        if value > 0:
            self._demanding.append((visible_at, value))
        for watcher in list(self._watchers):
            watcher(visible_at, value)

    def clear(self) -> None:
        """CPU resets the flag to 0 (before resuming the kernel)."""
        self.host_write(0)

    # -- device side -----------------------------------------------------
    def device_read(self, at_time: float) -> int:
        """Value a device-side poll at ``at_time`` observes.

        O(log writes): the history is sorted by visibility time (host
        writes are monotone in simulated time with a constant latency),
        so the latest visible entry is found by bisection.
        """
        idx = bisect_right(self._history, (at_time, _VALUE_INF))
        return self._history[idx - 1][1] if idx else 0

    @property
    def last_written(self) -> int:
        """Most recently written value (host's view, ignoring latency)."""
        return self._history[-1][1]

    def watch(self, callback: Callable[[float, int], None]) -> None:
        """Register ``callback(visible_at, value)`` on every host write."""
        self._watchers.append(callback)

    def unwatch(self, callback: Callable[[float, int], None]) -> None:
        self._watchers.remove(callback)


def should_yield(sm_id: int, flag_value: int, spatial_capable: bool) -> bool:
    """Does a CTA on SM ``sm_id`` observing ``flag_value`` have to quit?

    Temporal-only kernels (Figure 4 (a)/(b)) quit on any non-zero value;
    spatial kernels (Figure 4 (c)) quit iff ``hostSM_ID < spa_P``.
    """
    if flag_value <= 0:
        return False
    if not spatial_capable:
        return True
    return sm_id < flag_value
