"""Execution timelines: who occupied which SM, when.

A :class:`Timeline` attached to a :class:`~repro.gpu.gpu.SimulatedGPU`
records one interval per hosted CTA context (SM id, start, end, kernel,
tags). From those intervals it derives per-SM occupancy series and an
ASCII Gantt rendering — which is how `experiments/fig2.py` regenerates
the paper's Figure-2 illustration of temporal vs spatial preemption.

Two lighter companions serve the schedule-identity contract
(DESIGN.md §15):

* :class:`ScheduleHash` — an O(1)-memory crc32 fold over the kernel-level
  timeline (kernel name, SM id, residency start/end, in retirement
  order). Every :class:`~repro.gpu.gpu.SimulatedGPU` carries one, always
  on, so ``flep run/serve/fleet --json`` and ``flep bench`` snapshots can
  report a ``schedule_hash`` without retaining intervals — a
  million-request fleet trace hashes in constant space.
* :func:`collected_timelines` — a process-global collection window; every
  device built inside it records a full :class:`Timeline`. The
  golden-trace tests use it to compare macro-event and reference-loop
  schedules interval by interval.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from struct import pack
from typing import Dict, List, Optional, Tuple
from zlib import crc32

from ..errors import SimulationError


@dataclass(frozen=True)
class Interval:
    """One CTA context's residency on an SM."""

    sm_id: int
    start_us: float
    end_us: float
    kernel: str
    tag: str = ""

    def __post_init__(self):
        if self.end_us < self.start_us:
            raise SimulationError(
                f"interval ends before it starts: {self}"
            )

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us

    def overlaps(self, t0: float, t1: float) -> float:
        """Overlap length with the half-open window ``[t0, t1)``.

        Boundary semantics are deliberately half-open so adjacent
        windows tile a timeline without double-counting:

        * an interval ending exactly at ``t0`` contributes 0 — its time
          belongs to the *previous* window;
        * an interval starting exactly at ``t1`` contributes 0 — its
          time belongs to the *next* window;
        * a zero-length interval (``start_us == end_us``) contributes 0
          everywhere, even when it sits inside the window.

        The result is never negative, including for inverted or empty
        windows (``t1 <= t0``).
        """
        return max(0.0, min(self.end_us, t1) - max(self.start_us, t0))


@dataclass
class Timeline:
    """Recorder for CTA residency intervals.

    Attach with ``gpu.tracer = Timeline()`` *before* launching work;
    the device reports every context retirement.
    """

    intervals: List[Interval] = field(default_factory=list)
    _open: Dict[object, Tuple[int, float, str, str]] = field(
        default_factory=dict
    )

    # -- device hooks ----------------------------------------------------
    def context_placed(self, ctx, grid) -> None:
        label = grid.kernel.name
        tag = str(grid.tag.get("process", ""))
        self._open[ctx] = (ctx.sm.sm_id, ctx.started_at, label, tag)

    def context_retired(self, ctx, now: float) -> None:
        info = self._open.pop(ctx, None)
        if info is None:
            return
        sm_id, start, label, tag = info
        self.intervals.append(Interval(sm_id, start, now, label, tag))

    def close_open(self, now: float) -> None:
        """Close any still-resident contexts at time ``now`` (end of an
        observation window)."""
        for ctx, (sm_id, start, label, tag) in list(self._open.items()):
            self.intervals.append(Interval(sm_id, start, now, label, tag))
        self._open.clear()

    # -- queries ----------------------------------------------------------
    @property
    def horizon_us(self) -> float:
        return max((iv.end_us for iv in self.intervals), default=0.0)

    def kernels(self) -> List[str]:
        seen: List[str] = []
        for iv in self.intervals:
            if iv.kernel not in seen:
                seen.append(iv.kernel)
        return seen

    def sm_busy_us(self, sm_id: int, kernel: Optional[str] = None) -> float:
        return sum(
            iv.duration_us
            for iv in self.intervals
            if iv.sm_id == sm_id and (kernel is None or iv.kernel == kernel)
        )

    def kernel_sm_time_us(self, kernel: str) -> float:
        """Total SM-residency time of a kernel across all SMs."""
        return sum(
            iv.duration_us for iv in self.intervals if iv.kernel == kernel
        )

    def occupancy_series(
        self, sm_id: int, bucket_us: float, t0: float = 0.0,
        t1: Optional[float] = None,
    ) -> List[Dict[str, float]]:
        """Per-bucket busy fraction of one SM, split by kernel."""
        if bucket_us <= 0:
            raise SimulationError("bucket width must be positive")
        t1 = t1 if t1 is not None else self.horizon_us
        series = []
        t = t0
        while t < t1:
            end = min(t + bucket_us, t1)
            shares: Dict[str, float] = {}
            for iv in self.intervals:
                if iv.sm_id != sm_id:
                    continue
                ov = iv.overlaps(t, end)
                if ov > 0:
                    shares[iv.kernel] = shares.get(iv.kernel, 0.0) + ov
            width = end - t
            series.append({k: v / width for k, v in shares.items()})
            t = end
        return series

    def schedule_hash(self) -> str:
        """crc32 over this timeline's kernel-level schedule, identical
        to the device's always-on :class:`ScheduleHash` digest when every
        context retired (``close_open`` extras are hashed too)."""
        crc = 0
        for iv in self.intervals:
            crc = _fold_crc(crc, iv.kernel, iv.sm_id, iv.start_us, iv.end_us)
        return f"{crc:08x}"

    # -- rendering ---------------------------------------------------------
    def render_ascii(
        self,
        num_sms: int,
        bucket_us: float,
        t0: float = 0.0,
        t1: Optional[float] = None,
        symbols: Optional[Dict[str, str]] = None,
    ) -> str:
        """An ASCII Gantt: one row per SM, one column per time bucket;
        each cell shows the kernel occupying most of that SM-bucket
        ('.' = idle)."""
        t1 = t1 if t1 is not None else self.horizon_us
        if symbols is None:
            symbols = {}
            for k in self.kernels():
                # first unused letter of the kernel name
                for ch in k.upper():
                    if ch.isalnum() and ch not in symbols.values():
                        symbols[k] = ch
                        break
                else:
                    symbols[k] = "?"
        lines = []
        for sm in range(num_sms):
            series = self.occupancy_series(sm, bucket_us, t0, t1)
            row = []
            for shares in series:
                if not shares:
                    row.append(".")
                else:
                    dominant = max(shares, key=shares.get)
                    row.append(symbols.get(dominant, "?"))
            lines.append(f"SM{sm:<2d} |" + "".join(row) + "|")
        legend = "  ".join(f"{v}={k}" for k, v in symbols.items())
        scale = (
            f"      {t0:.0f}us .. {t1:.0f}us, one column = {bucket_us:.0f}us"
        )
        return "\n".join(lines + [scale, "      " + legend])


# ---------------------------------------------------------------------------
# schedule hashing (identity contract, DESIGN.md §15)
# ---------------------------------------------------------------------------
def _fold_crc(crc: int, kernel: str, sm_id: int, start: float, end: float) -> int:
    """Fold one residency interval into a running crc32."""
    return crc32(
        kernel.encode() + pack("<idd", sm_id, start, end), crc
    )


class ScheduleHash:
    """Constant-space crc32 fold of a device's kernel-level timeline.

    Folded at context retirement (the same instant :class:`Timeline`
    records an interval), over ``(kernel, sm_id, started_at, ended_at)``
    in retirement order — which the identity contract fixes, so two runs
    with the same schedule produce the same digest and any timeline or
    completion-order drift changes it. Two hexdigests comparing equal is
    what ``flep bench --fail-on-drift`` gates on.
    """

    __slots__ = ("crc", "count")

    def __init__(self):
        self.crc = 0
        self.count = 0

    def fold(self, kernel: str, sm_id: int, start: float, end: float) -> None:
        self.crc = _fold_crc(self.crc, kernel, sm_id, start, end)
        self.count += 1

    @property
    def hexdigest(self) -> str:
        return f"{self.crc:08x}"


def combined_schedule_hash(digests: "List[str]") -> str:
    """One digest over several devices' digests (fleet rollups), stable
    under the caller's node order."""
    return f"{crc32(':'.join(digests).encode()):08x}"


# ---------------------------------------------------------------------------
# process-global schedule-hash collection (bench / CLI reporting)
# ---------------------------------------------------------------------------
_COLLECT_SCHED: Optional[List[ScheduleHash]] = None


def _maybe_collect_sched(sched: ScheduleHash) -> None:
    """Register a device's always-on digest with the open collection
    window, if any (the device constructor calls this)."""
    if _COLLECT_SCHED is not None:
        _COLLECT_SCHED.append(sched)


@contextmanager
def collected_schedule_hashes():
    """Collect every device's :class:`ScheduleHash` built in this window
    — constant space per device, unlike :func:`collected_timelines`.
    Read ``.hexdigest`` after the workload ran::

        with collected_schedule_hashes() as scheds:
            SCENARIOS["fleet_sweep"].run(scale)
        digest = combined_schedule_hash([s.hexdigest for s in scheds])
    """
    global _COLLECT_SCHED
    prev = _COLLECT_SCHED
    _COLLECT_SCHED = out = []
    try:
        yield out
    finally:
        _COLLECT_SCHED = prev


# ---------------------------------------------------------------------------
# process-global timeline collection (golden-trace tests)
# ---------------------------------------------------------------------------
_COLLECT: Optional[List[Timeline]] = None


def _maybe_collect_timeline() -> Optional[Timeline]:
    """A fresh collected Timeline when a collection window is open (the
    device constructor calls this), else None."""
    if _COLLECT is None:
        return None
    tl = Timeline()
    _COLLECT.append(tl)
    return tl


@contextmanager
def collected_timelines():
    """Collect a full :class:`Timeline` from every device constructed in
    this window::

        with collected_timelines() as tls:
            SCENARIOS["fig8_mix"].run(scale)
        hashes = [tl.schedule_hash() for tl in tls]
    """
    global _COLLECT
    prev = _COLLECT
    _COLLECT = out = []
    try:
        yield out
    finally:
        _COLLECT = prev
