"""GPU device description and cost model.

The default device mirrors the paper's testbed: an NVIDIA Tesla K40
(Kepler GK110B, compute capability 3.5) with 15 SMs. Resource limits are
the published CC 3.5 numbers; the cost model collects the latency
constants the simulator charges for launches, pinned-memory polls, atomic
task pulls and PCIe transfers. Those constants are what DESIGN.md §6 calls
the calibration anchors — Table 1's execution times are solved against
them by :mod:`repro.workloads.calibration`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..errors import ResourceError

KIB = 1024


@dataclass(frozen=True)
class CostModel:
    """Latency constants (microseconds) charged by the simulator.

    These reproduce the *relative* costs the paper leans on:

    * ``kernel_launch_us`` — driver/launch overhead per kernel command.
      This is what makes kernel slicing expensive (Figure 17) and what
      dominates Table 1's trivial-input times (49–90 µs).
    * ``pinned_poll_us`` — one read of the ``temp_P``/``spa_P`` flag in
      pinned host memory over PCIe. Amortized over ``L`` tasks; FLEP's
      offline tuner picks the smallest ``L`` keeping poll overhead < 4 %.
    * ``task_pull_us`` — one atomic fetch-add on the global task counter
      (single thread per CTA, mostly L2-resident, hence cheap). This is
      the floor FLEP's amortizing factor cannot tune away — the reason
      VA (tiny tasks) is FLEP's worst case in Figure 17.
    * ``preempt_signal_us`` — delay from the host writing the flag until
      device-side polls can observe it.
    * ``slice_gap_us`` — back-to-back dispatch gap between pipelined
      kernel launches in one stream. Kernel slicing pays this per slice
      boundary (plus the CPU-side preemption check), which is its
      overhead source in Figure 17.
    """

    kernel_launch_us: float = 50.0
    pinned_poll_us: float = 1.0
    task_pull_us: float = 0.02
    preempt_signal_us: float = 1.0
    slice_gap_us: float = 4.0
    pcie_bandwidth_gbps: float = 10.0  # effective H2D/D2H bandwidth
    pcie_latency_us: float = 5.0

    def transfer_time_us(self, nbytes: int) -> float:
        """Time to move ``nbytes`` across PCIe, latency + bandwidth."""
        if nbytes < 0:
            raise ResourceError(f"negative transfer size {nbytes}")
        if nbytes == 0:
            return 0.0
        bytes_per_us = self.pcie_bandwidth_gbps * 1e9 / 8 / 1e6
        return self.pcie_latency_us + nbytes / bytes_per_us


@dataclass(frozen=True)
class GPUDeviceSpec:
    """Static hardware description of the simulated GPU."""

    name: str = "Tesla K40"
    compute_capability: tuple = (3, 5)
    num_sms: int = 15
    max_threads_per_sm: int = 2048
    max_ctas_per_sm: int = 16
    max_warps_per_sm: int = 64
    registers_per_sm: int = 65536
    shared_mem_per_sm: int = 48 * KIB
    max_threads_per_cta: int = 1024
    max_registers_per_thread: int = 255
    warp_size: int = 32
    # allocation granularities (CC 3.5)
    register_alloc_unit: int = 256       # registers, per warp
    shared_mem_alloc_unit: int = 256     # bytes
    warp_alloc_granularity: int = 4
    device_memory_bytes: int = 12 * 1024**3
    costs: CostModel = field(default_factory=CostModel)

    def with_costs(self, **overrides) -> "GPUDeviceSpec":
        """Return a copy with some cost-model constants replaced."""
        return replace(self, costs=replace(self.costs, **overrides))

    def with_sms(self, num_sms: int) -> "GPUDeviceSpec":
        """Return a copy with a different SM count (for sweeps)."""
        if num_sms <= 0:
            raise ResourceError(f"num_sms must be positive, got {num_sms}")
        return replace(self, num_sms=num_sms)

    @property
    def total_cta_slots(self) -> int:
        """Upper bound on simultaneously active CTAs, ignoring per-kernel
        resource limits (``num_sms * max_ctas_per_sm``)."""
        return self.num_sms * self.max_ctas_per_sm


def tesla_k40(**cost_overrides) -> GPUDeviceSpec:
    """The paper's GPU: Tesla K40, 15 SMs, CC 3.5, 12 GB."""
    spec = GPUDeviceSpec()
    if cost_overrides:
        spec = spec.with_costs(**cost_overrides)
    return spec


def pascal_p100(**cost_overrides) -> GPUDeviceSpec:
    """A Pascal-class device (GP100: 56 SMs, CC 6.0).

    The paper notes Pascal is the first architecture *claiming*
    hardware preemption, with no exposed software control (§1) — FLEP
    still applies. Useful for device-generalization tests: more SMs,
    smaller per-SM CTA slots.
    """
    spec = GPUDeviceSpec(
        name="Tesla P100",
        compute_capability=(6, 0),
        num_sms=56,
        max_threads_per_sm=2048,
        max_ctas_per_sm=32,
        max_warps_per_sm=64,
        registers_per_sm=65536,
        shared_mem_per_sm=64 * KIB,
        device_memory_bytes=16 * 1024**3,
    )
    if cost_overrides:
        spec = spec.with_costs(**cost_overrides)
    return spec


#: Named device factories for per-node fleet specs (``--devices``).
DEVICE_CATALOG = {
    "k40": tesla_k40,
    "p100": pascal_p100,
}


def device_from_spec(spec: str) -> GPUDeviceSpec:
    """Resolve a device spec string like ``"k40"`` or ``"p100@40"``.

    The optional ``@N`` suffix overrides the SM count, so a fleet can
    mix a full-size GPU with cut-down siblings (``k40@8``) — the
    calibrated suite built against the smaller device then yields
    proportionally longer task times, which is how degradation
    experiments model losing the *big* node.
    """
    name, _, sms = spec.strip().partition("@")
    if name not in DEVICE_CATALOG:
        raise ResourceError(
            f"unknown device spec {name!r} (have {sorted(DEVICE_CATALOG)})"
        )
    device = DEVICE_CATALOG[name]()
    if sms:
        try:
            device = device.with_sms(int(sms))
        except ValueError:
            raise ResourceError(
                f"bad SM count in device spec {spec!r}"
            ) from None
    return device


def small_test_gpu(num_sms: int = 2, max_ctas_per_sm: int = 2) -> GPUDeviceSpec:
    """A tiny device matching Figure 2's illustration (2 SMs x 2 CTAs).

    Used heavily by unit tests, where hand-computing schedules must stay
    tractable.
    """
    return GPUDeviceSpec(
        name="TestGPU",
        num_sms=num_sms,
        max_ctas_per_sm=max_ctas_per_sm,
        max_threads_per_sm=2048,
        registers_per_sm=65536,
        shared_mem_per_sm=48 * KIB,
    )
