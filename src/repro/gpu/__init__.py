"""Discrete-event GPU simulator substrate.

Reproduces the scheduling-relevant behaviour of the paper's testbed (a
Tesla K40 under CUDA 7.0 + MPS): SM occupancy limits, the non-preemptive
hardware CTA FIFO, streams, pinned-memory flag polling, launch overhead
and PCIe transfers. See DESIGN.md §2/§4 for the substitution argument
and the event-batching design.
"""

from .clock import Clock, MILLISECOND, SECOND
from .cta import CTAContext, CTAState
from .device import CostModel, GPUDeviceSpec, small_test_gpu, tesla_k40
from .events import Event, EventHandle
from .gpu import SimulatedGPU
from .grid import Grid, GridState
from .host import (
    CopyToDevice,
    CopyToHost,
    HostCompute,
    HostProgram,
    KernelInvoke,
)
from .kernel import (
    KernelImage,
    KernelMode,
    LaunchConfig,
    ResourceUsage,
    TaskModel,
    TaskPool,
    guided_batch,
)
from .memory import DeviceMemory, PinnedFlag, should_yield
from .mps import MPSServer
from .occupancy import (
    OccupancyReport,
    active_slots,
    max_ctas_per_sm,
    occupancy_report,
    sms_needed,
)
from .sim import Simulator
from .sm import SM
from .stream import Stream
from .trace import Interval, Timeline
from .transfer import DMAEngine, Direction

__all__ = [
    "Clock",
    "MILLISECOND",
    "SECOND",
    "CTAContext",
    "CTAState",
    "CostModel",
    "GPUDeviceSpec",
    "small_test_gpu",
    "tesla_k40",
    "Event",
    "EventHandle",
    "SimulatedGPU",
    "Grid",
    "GridState",
    "CopyToDevice",
    "CopyToHost",
    "HostCompute",
    "HostProgram",
    "KernelInvoke",
    "KernelImage",
    "KernelMode",
    "LaunchConfig",
    "ResourceUsage",
    "TaskModel",
    "TaskPool",
    "guided_batch",
    "DeviceMemory",
    "PinnedFlag",
    "should_yield",
    "MPSServer",
    "OccupancyReport",
    "active_slots",
    "max_ctas_per_sm",
    "occupancy_report",
    "sms_needed",
    "Simulator",
    "SM",
    "Stream",
    "Interval",
    "Timeline",
    "DMAEngine",
    "Direction",
]
