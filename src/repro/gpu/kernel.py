"""Kernel images, launch configurations and task pools.

Terminology follows §2.1/§4.1 of the paper:

* A **task** is the work one CTA performs in the *original* kernel.
* An **original** launch creates one CTA per task; the hardware FIFO
  dispatches them and blocks every later kernel until its queue drains.
* A **persistent** (FLEP-transformed) launch creates only
  ``num_SMs * max_CTAs_per_SM`` CTAs; each loops pulling tasks from a
  global counter and polls a pinned-memory flag every ``L`` tasks.

The simulator executes both through the same machinery: a
:class:`TaskPool` (the global task counter) drained by resident CTA
contexts (:mod:`repro.gpu.cta`). For original kernels the pool simply
*is* the hardware CTA queue, with zero pull/poll cost and no flag.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Optional

from ..errors import ResourceError, SimulationError


class KernelMode(enum.Enum):
    """How a kernel image executes on the device."""

    ORIGINAL = "original"          # one CTA per task, non-preemptable
    PERSISTENT = "persistent"      # FLEP-transformed, flag-aware


@dataclass(frozen=True)
class ResourceUsage:
    """Per-CTA hardware footprint, as derived by the compiler's linear
    scan of the generated PTX (§4.1)."""

    threads_per_cta: int = 256
    regs_per_thread: int = 32
    shared_mem_per_cta: int = 0

    def __post_init__(self):
        if self.threads_per_cta <= 0:
            raise ResourceError("threads_per_cta must be positive")
        if self.regs_per_thread < 0 or self.shared_mem_per_cta < 0:
            raise ResourceError("negative resource usage")


@dataclass(frozen=True)
class TaskModel:
    """Timing model for one task of a kernel.

    ``mean_task_us`` is the average wall time one CTA needs for one task
    when running at full occupancy. ``cta_jitter_frac`` models
    input-dependent irregularity (e.g. SPMV's non-zero distribution): each
    CTA context draws a multiplier in ``[1 - j, 1 + j]`` when it starts.
    """

    mean_task_us: float
    cta_jitter_frac: float = 0.0

    def __post_init__(self):
        if self.mean_task_us <= 0:
            raise SimulationError("mean_task_us must be positive")
        if not 0.0 <= self.cta_jitter_frac < 1.0:
            raise SimulationError("cta_jitter_frac must be in [0, 1)")

    def sample_multiplier(self, rng) -> float:
        """Per-context task-time multiplier (1.0 when jitter disabled)."""
        if self.cta_jitter_frac == 0.0 or rng is None:
            return 1.0
        return 1.0 + rng.uniform(-self.cta_jitter_frac, self.cta_jitter_frac)


@dataclass(frozen=True)
class KernelImage:
    """An executable kernel binary, as loaded on the simulated device.

    The FLEP compiler produces ``PERSISTENT`` images (with an amortizing
    factor); untransformed programs produce ``ORIGINAL`` images.
    """

    name: str
    resources: ResourceUsage
    task_model: TaskModel
    mode: KernelMode = KernelMode.ORIGINAL
    amortize_l: int = 1
    supports_spatial: bool = False

    def __post_init__(self):
        if self.amortize_l < 1:
            raise SimulationError("amortizing factor L must be >= 1")
        if self.mode is KernelMode.ORIGINAL and self.supports_spatial:
            raise SimulationError("original kernels cannot yield SMs")

    def transformed(self, amortize_l: int, spatial: bool = True) -> "KernelImage":
        """Return the FLEP persistent-thread form of this image."""
        return KernelImage(
            name=f"{self.name}__flep",
            resources=self.resources,
            task_model=self.task_model,
            mode=KernelMode.PERSISTENT,
            amortize_l=amortize_l,
            supports_spatial=spatial,
        )


@dataclass(frozen=True)
class LaunchConfig:
    """Grid configuration for one kernel invocation.

    ``total_tasks`` is the original grid size (number of tasks);
    ``grid_ctas`` is how many CTAs the launch actually creates — equal to
    ``total_tasks`` for original kernels, clamped to the device's active
    capacity for persistent kernels.
    """

    total_tasks: int
    grid_ctas: int

    def __post_init__(self):
        if self.total_tasks < 0:
            raise SimulationError("total_tasks cannot be negative")
        if self.grid_ctas < 0:
            raise SimulationError("grid_ctas cannot be negative")
        if self.grid_ctas > self.total_tasks:
            raise SimulationError(
                f"grid launches {self.grid_ctas} CTAs for only "
                f"{self.total_tasks} tasks"
            )

    @staticmethod
    def original(total_tasks: int) -> "LaunchConfig":
        return LaunchConfig(total_tasks=total_tasks, grid_ctas=total_tasks)

    @staticmethod
    def persistent(total_tasks: int, active_slots: int) -> "LaunchConfig":
        """FLEP's clamp: launch ``min(tasks, num_SMs*max_CTAs_per_SM)``
        CTAs so every launched CTA is guaranteed active (§4.1)."""
        return LaunchConfig(
            total_tasks=total_tasks,
            grid_ctas=min(total_tasks, active_slots),
        )


class TaskPool:
    """The global task counter persistent CTAs pull from.

    The simulator lets CTA contexts *take* batches of tasks (for event
    batching) and *give back* the unprocessed remainder when preempted, so
    task conservation holds exactly: ``done + outstanding + remaining ==
    total`` at all times. A pool can be shared across launches — this is
    how a preempted kernel resumes with only its remaining tasks.
    """

    __slots__ = (
        "total", "_remaining", "_outstanding", "_done", "_workers",
        "_grids", "_cohort",
    )

    def __init__(self, total: int):
        if total < 0:
            raise SimulationError("task pool size cannot be negative")
        self.total = total
        self._remaining = total
        self._outstanding = 0
        self._done = 0
        self._workers = 0
        #: grid -> live worker count; lets a macro cohort enumerate
        #: every grid draining this pool (resume / top-up sharing)
        self._grids: dict = {}
        #: active macro-event cohort draining this pool, if any
        #: (repro.gpu.macro). The cohort commits its precomputed steps
        #: lazily; the public properties below sync it first so every
        #: external observer sees exactly the state the per-batch
        #: reference loop would show at this simulated time.
        self._cohort = None

    def _sync_cohort(self) -> None:
        c = self._cohort
        if c is not None:
            c.sync(c.sim.clock._now)

    # -- queries -------------------------------------------------------
    @property
    def remaining(self) -> int:
        """Tasks not yet claimed by any CTA context."""
        self._sync_cohort()
        return self._remaining

    @property
    def outstanding(self) -> int:
        """Tasks claimed by running contexts but not yet finished."""
        self._sync_cohort()
        return self._outstanding

    @property
    def done(self) -> int:
        self._sync_cohort()
        return self._done

    @property
    def unfinished(self) -> int:
        """Tasks that still must run for the kernel to complete."""
        self._sync_cohort()
        return self._remaining + self._outstanding

    @property
    def exhausted(self) -> bool:
        """True when ``pull_task()`` would return NULL (Figure 4)."""
        self._sync_cohort()
        return self._remaining == 0

    @property
    def complete(self) -> bool:
        self._sync_cohort()
        return self._done == self.total

    @property
    def workers(self) -> int:
        """CTA contexts currently pulling from this pool — possibly
        spread over several grids (a resumed or topped-up invocation).
        Guided batch sizing must use this pool-wide concurrency, not a
        single grid's width, or late-joining grids over-claim."""
        return self._workers

    def worker_joined(self, grid=None) -> None:
        # a foreign worker (resume / top-up grid sharing this pool)
        # invalidates a cohort's precomputed widths: fall back to
        # per-batch eventing before the join is visible
        c = self._cohort
        if c is not None:
            c.dissolve(c.sim.clock._now)
        self._workers += 1
        if grid is not None:
            self._grids[grid] = self._grids.get(grid, 0) + 1

    def worker_left(self, grid=None) -> None:
        if self._workers <= 0:
            raise SimulationError("worker_left() without matching join")
        self._workers -= 1
        if grid is not None:
            left = self._grids.get(grid, 0) - 1
            if left > 0:
                self._grids[grid] = left
            else:
                self._grids.pop(grid, None)

    # -- mutations -----------------------------------------------------
    def take(self, n: int) -> int:
        """Claim up to ``n`` tasks; returns how many were claimed."""
        c = self._cohort
        if c is not None:
            c.dissolve(c.sim.clock._now)
        if n < 0:
            raise SimulationError("cannot take a negative batch")
        got = min(n, self._remaining)
        self._remaining -= got
        self._outstanding += got
        return got

    def finish(self, n: int) -> None:
        """Report ``n`` claimed tasks as processed."""
        c = self._cohort
        if c is not None:
            c.dissolve(c.sim.clock._now)
        if n < 0 or n > self._outstanding:
            raise SimulationError(
                f"finishing {n} tasks but only {self._outstanding} outstanding"
            )
        self._outstanding -= n
        self._done += n

    def give_back(self, n: int) -> None:
        """Return ``n`` claimed-but-unprocessed tasks (preemption path)."""
        c = self._cohort
        if c is not None:
            c.dissolve(c.sim.clock._now)
        if n < 0 or n > self._outstanding:
            raise SimulationError(
                f"giving back {n} tasks but only {self._outstanding} outstanding"
            )
        self._outstanding -= n
        self._remaining += n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TaskPool(total={self.total}, done={self._done}, "
            f"out={self._outstanding}, rem={self._remaining})"
        )


def guided_batch(remaining: int, contexts: int, minimum: int = 1) -> int:
    """Guided self-scheduling batch size.

    Each context claims ``ceil(remaining / (2 * contexts))`` tasks (at
    least ``minimum``), which converges to single-task granularity at the
    tail. This keeps the event count at ``O(contexts * log(tasks))`` while
    matching greedy hardware dispatch closely (DESIGN.md §4).
    """
    if remaining <= 0:
        return 0
    if contexts <= 0:
        raise SimulationError("guided_batch needs at least one context")
    size = math.ceil(remaining / (2 * contexts))
    size = max(minimum, size)
    return min(size, remaining)
