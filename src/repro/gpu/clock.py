"""Simulated clock utilities.

The whole simulator measures time in **microseconds** as floats, matching
the unit the paper reports in Table 1. :class:`Clock` is a tiny mutable
holder so that every component can share one monotonically-advancing time
source owned by the event engine.
"""

from __future__ import annotations

from ..errors import SimulationError

#: One millisecond expressed in simulator time units (microseconds).
MILLISECOND = 1_000.0
#: One second expressed in simulator time units (microseconds).
SECOND = 1_000_000.0


class Clock:
    """Monotonic simulated clock in microseconds.

    Only the event engine should call :meth:`advance_to`; everything else
    reads :attr:`now`.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0):
        if start < 0:
            raise SimulationError(f"clock cannot start at negative time {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self._now

    def advance_to(self, t: float) -> None:
        """Move the clock forward to time ``t``.

        Raises :class:`SimulationError` on attempts to move backwards,
        which would indicate a corrupted event queue.
        """
        if t < self._now:
            raise SimulationError(
                f"clock would move backwards: {self._now} -> {t}"
            )
        self._now = t

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clock(now={self._now:.3f}us)"
