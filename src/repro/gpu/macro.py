"""Macro-event fast-forward for persistent-grid batch chains.

The per-batch event loop (one ``batch`` event per claimed batch, ~98% of
all events in the bench profile) is the simulator's ceiling. When a
persistent grid reaches steady state — every CTA placed, the preemption
flag quiescent, the task pool drained only by this grid's contexts — the
entire remaining claim/complete interleaving is a *closed* deterministic
system: batch sizes depend only on ``(remaining, width)`` at each claim
instant, completion times are ``t + polls*poll_cost + batch*per_task``
chains, and the global event loop would simply replay that interleaving
one heap pop at a time.

:class:`MacroCohort` replays it eagerly instead, on a private mini-heap
ordered exactly like the engine's ``(time, seq)`` heap, and converts the
whole chain into

* a list of *steps* — (complete previous batch, claim next batch) pairs
  with precomputed times — committed **lazily** to the real pool and
  contexts as simulated time passes them, and
* one real wake-up event per context at its *final* batch completion
  (the first externally visible consequence: the context observes the
  empty pool, finishes, and releases its SM).

Identity contract (DESIGN.md §15): kernel-level timelines, preemption
points and completion orders stay bit-identical to the per-batch
reference loop. Three rules make that hold:

1. **Identical float-op order.** Claim sizes use the same memo table and
   the same ``ceil(remaining / (2*width))`` expression as
   :meth:`Grid.next_batch_size`; durations use the same
   ``polls * poll_cost + batch * per_task`` expression (and share the
   context's ``_plan_cache``); completion times are the same ``t + dur``
   additions the reference loop performs.
2. **Sync before observation.** The real pool/contexts lag behind the
   precomputed plan; any external read of pool state
   (:class:`~repro.gpu.kernel.TaskPool` properties) first applies every
   step with ``step_time <= now``. Step times never exceed the pool's
   virtual-exhaustion time, which never exceeds any final-completion
   wake-up, so wake-ups always observe fully-synced state.
3. **Dissolve on interference.** A host flag write, an external pool
   mutation, or a foreign worker joining the pool dissolves the cohort
   *at host-write time* — strictly before the write's device visibility
   — reconstructing each context's in-flight batch with a real
   completion event. Every poll boundary the reference loop observes
   after the write therefore also happens here, so no flag write is
   ever skipped (tested by a hypothesis property).
"""

from __future__ import annotations

import heapq
import math
from typing import TYPE_CHECKING, Dict, List, Optional

from .events import maybe_cancel

if TYPE_CHECKING:  # pragma: no cover
    from .cta import CTAContext
    from .grid import Grid


#: First replay chunk (in claims); each continuation grows it 4x, so a
#: quiescent chain converges to full fast-forward in a handful of
#: continuation events while an interference-heavy one wastes at most a
#: few tens of virtual claims per absorb/dissolve cycle.
_CHUNK0 = 32


class MacroCohort:
    """One pool's fast-forwarded batch chain (see module docstring).

    A cohort spans *every* grid draining the pool — a spatially-degraded
    grid's survivors plus its resume/top-up grids claim interleaved from
    one pool, and that interleaving is just as closed as the single-grid
    case once each grid is fully placed and each flag steady."""

    __slots__ = (
        "grid", "grids", "pool", "sim",
        "_steps", "_idx", "_cur_complete", "_claim_order", "_dissolved",
        "_heap", "_v_rem", "_vseq", "_chunk", "_cont",
    )

    def __init__(self, grid: "Grid"):
        self.grid = grid
        #: every grid whose contexts the cohort absorbed
        self.grids: List["Grid"] = []
        self.pool = grid.pool
        self.sim = grid.sim
        #: precomputed (t, ctx, done_batch, polls, post_since, claim,
        #: t_next) tuples, in global event order; applied lazily
        self._steps: List[tuple] = []
        #: first not-yet-applied step
        self._idx = 0
        #: ctx -> completion time of its currently in-flight batch, as
        #: of the last applied step (dissolve reconstructs from this)
        self._cur_complete: Dict["CTAContext", float] = {}
        #: ctx -> global claim order of its in-flight batch: (0, seq)
        #: for batches absorbed mid-flight, (1, step idx) once a virtual
        #: claim is applied. Dissolve reschedules completions in this
        #: order — the reference loop assigns event seqs at claim time,
        #: so same-instant completions fire in claim order there.
        self._claim_order: Dict["CTAContext", tuple] = {}
        self._dissolved = False
        #: private replay heap of (time, order, ctx, state) pending
        #: completions; ``state`` is the context's mutable replay record
        #: [since_poll, batch, 2*width, grid L, ctx L, poll_cost,
        #: per_task, plan_cache] carried with the entry so the hot loop
        #: never touches a dict. (time, order) is unique, so the heap
        #: never compares the trailing fields.
        self._heap: List[tuple] = []
        self._v_rem = 0
        self._vseq = 0
        #: claims allowed in the next replay burst (grows 4x per burst)
        self._chunk = _CHUNK0
        #: pending continuation event while the replay is paused
        self._cont = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def absorb(cls, grid: "Grid", trigger: "CTAContext", now: float) -> bool:
        """Take over the pool's batch chain from ``trigger``'s claim at
        ``now``. Returns False (changing nothing) if any precondition
        fails; on True the trigger must not claim a batch itself.

        Preconditions checked by the caller (:meth:`Grid.try_macro`):
        every grid draining the pool persistent and fully placed, every
        flag steady, every pool worker one of those grids' contexts,
        ``pool._remaining > 0``.
        """
        sim = grid.sim
        pool = grid.pool
        cohort = cls(grid)
        cur_complete = cohort._cur_complete

        # Mini-heap entries are (time, order, ctx, state). Absorbed
        # sibling events keep their real engine seq as the order key;
        # virtual pushes use a strictly larger counter — exactly how
        # the engine would order events scheduled later.
        heap: List[tuple] = []
        absorbed = []
        trig_state = None
        workers = pool._workers
        grids = cohort.grids
        for g in pool._grids:
            grids.append(g)
            # each grid claims with its own guided width (the larger of
            # its expected concurrency and the pool-wide worker count —
            # identical to Grid.next_batch_size), constant while the
            # cohort lives: any join/leave dissolves it first
            width = g._parallel_width
            if workers > width:
                width = workers
            width2 = 2 * width
            # L_grid == 0 marks a non-persistent grid: its guided plan
            # has no L-multiple clamp (Grid.next_batch_size), its
            # contexts never poll (L=1, poll_cost=0.0 make the duration
            # math degenerate to batch * per_task, bit-identically) and
            # its batches charge no observability counters
            pers = g._persistent
            L_grid = g._amortize_l if pers else 0
            for ctx in g.contexts:
                state = [
                    ctx._since_poll, ctx._batch_size, width2, L_grid,
                    ctx._amortize, ctx._poll_cost, ctx._per_task,
                    ctx._plan_cache, pers,
                ]
                if ctx is trigger:
                    trig_state = state
                    continue
                ev = ctx._completion
                if ev is None or ctx._yield_event is not None:
                    return False
                heap.append((ev.time, ev.seq, ctx, state))
                cur_complete[ctx] = ev.time
                cohort._claim_order[ctx] = (0, ev.seq)
                absorbed.append((ctx, ev))
        if trigger._yield_event is not None:
            return False
        heapq.heapify(heap)
        for ctx, ev in absorbed:
            ev.cancel()
            ctx._completion = None

        cohort._heap = heap
        cohort._v_rem = pool._remaining
        cohort._vseq = sim._seq  # larger than every absorbed seq

        # the trigger claims immediately, inside the current event —
        # any still-pending sibling event at this exact time has a
        # larger seq (smaller ones would already have fired).
        # Inlined from Grid.next_batch_size — identical math.
        width2 = trig_state[2]
        L_grid = trig_state[3]
        v_rem = cohort._v_rem
        b = math.ceil(v_rem / width2)
        if b < 1:
            b = 1
        if b > v_rem:
            b = v_rem
        if L_grid and b > L_grid:
            b = (b // L_grid) * L_grid
        if b > v_rem:
            b = v_rem
        since = trigger._since_poll
        dkey = (b, since)
        cache = trigger._plan_cache
        dur = cache.get(dkey)
        if dur is None:
            L = trigger._amortize
            first = (L - since) % L
            p = 0 if first >= b else 1 + (b - 1 - first) // L
            dur = cache[dkey] = (
                p * trigger._poll_cost + b * trigger._per_task
            )
        t_next = now + dur
        cohort._steps.append((now, trigger, 0, 0, since, b, t_next))
        cohort._v_rem = v_rem - b
        trig_state[0] = since
        trig_state[1] = b
        cohort._vseq += 1
        heapq.heappush(heap, (t_next, cohort._vseq, trigger, trig_state))

        cohort._replay()
        for g in grids:
            g._macro = cohort
        pool._cohort = cohort
        return True

    # ------------------------------------------------------------------
    # chunked virtual replay
    # ------------------------------------------------------------------
    def _replay(self) -> None:
        """Fast-forward up to ``_chunk`` more claims on the private heap.

        The replay pauses (scheduling one real continuation event at the
        next virtual completion instant) rather than running the whole
        chain eagerly: a host flag write dissolves the cohort and throws
        the unreached plan away, so preemption-heavy workloads would pay
        the full O(remaining batches) replay only to discard it. The
        chunk grows 4x per burst, so quiescent chains still collapse
        with only O(log) continuation events.
        """
        sim = self.sim
        heap = self._heap
        steps = self._steps
        v_rem = self._v_rem
        vseq = self._vseq
        budget = self._chunk
        self._chunk = budget * 4
        self._cont = None
        push = heapq.heappush
        pop = heapq.heappop
        ceil = math.ceil
        append = steps.append

        while heap:
            if budget <= 0 and v_rem > 0:
                # pause: resume at the next completion instant (purely
                # internal — the plan extension is invisible until a
                # step or final actually commits)
                self._cont = sim.schedule_event(
                    heap[0][0], self._continue, "macro-cont"
                )
                break
            t, _, ctx, st = pop(heap)
            if v_rem <= 0:
                # final batch: the context will observe the empty pool
                # at this completion and finish — externally visible
                # (SM release), so it stays a real event. Pops after
                # exhaustion arrive in (time, claim-order), matching
                # the seq order the reference loop would assign.
                ctx._completion = sim.schedule_event(
                    t, self._make_final(ctx), ctx._batch_label
                )
                continue
            since, done_b, width2, L_grid, L, poll_cost, per_task, \
                cache, pers = st
            if pers:
                first = (L - since) % L
                polls = (
                    0 if first >= done_b else 1 + (done_b - 1 - first) // L
                )
                since = (since + done_b) % L
            else:
                # non-persistent: no polls to charge (marked for sync),
                # since stays 0
                polls = -1
            # claim the next batch — inlined from Grid.next_batch_size,
            # identical integer math with the claimer's own width
            b = ceil(v_rem / width2)
            if b < 1:
                b = 1
            if b > v_rem:
                b = v_rem
            if L_grid and b > L_grid:
                b = (b // L_grid) * L_grid
            if b > v_rem:
                b = v_rem
            # duration via the context's shared plan cache — identical
            # float-op order to _begin_next_batch's inline computation
            dkey = (b, since)
            dur = cache.get(dkey)
            if dur is None:
                first = (L - since) % L
                p = 0 if first >= b else 1 + (b - 1 - first) // L
                dur = cache[dkey] = p * poll_cost + b * per_task
            t_next = t + dur
            append((t, ctx, done_b, polls, since, b, t_next))
            v_rem -= b
            st[0] = since
            st[1] = b
            vseq += 1
            push(heap, (t_next, vseq, ctx, st))
            budget -= 1

        self._v_rem = v_rem
        self._vseq = vseq

    def _continue(self) -> None:
        if not self._dissolved:
            self._replay()

    def _make_final(self, ctx: "CTAContext"):
        def fire() -> None:
            # every step precedes every final completion (steps stop at
            # pool exhaustion), so this sync commits the whole plan
            if not self._dissolved:
                self.sync(self.sim.clock._now)
            ctx._on_batch_complete()
        return fire

    # ------------------------------------------------------------------
    # lazy commit
    # ------------------------------------------------------------------
    def sync(self, now: float) -> None:
        """Apply every precomputed step with ``time <= now`` to the real
        pool and contexts. Idempotent; called by wake-ups, by TaskPool
        property reads, and by :meth:`dissolve`."""
        steps = self._steps
        i = self._idx
        n = len(steps)
        if i >= n or steps[i][0] > now:
            return
        pool = self.pool
        cur_complete = self._cur_complete
        claim_order = self._claim_order
        # aggregate over the committed range: every counter below is
        # purely additive (TaskPool.finish/take, the Observability
        # counters, SimProfiler.on_batch), so charging the sums once is
        # exactly equal to the reference loop's per-batch charges.
        # Steps with polls < 0 are non-persistent batches: the reference
        # loop charges no obs/prof for those (and never moves their poll
        # offset), so they contribute to pool accounting only.
        sum_b = sum_done = collapsed = 0
        chg_done = chg_polls = 0
        obs = prof = aprof = None
        while i < n and steps[i][0] <= now:
            t, ctx, done_b, polls, post, b, t_next = steps[i]
            claim_order[ctx] = (1, i)
            i += 1
            if done_b:
                sum_done += done_b
                collapsed += 1
                ctx.tasks_done += done_b
                aprof = ctx._prof
                if polls >= 0:
                    chg_done += done_b
                    chg_polls += polls
                    ctx._since_poll = post
                    obs = ctx._obs
                    prof = ctx._prof
            sum_b += b
            ctx._batch_start = t
            ctx._batch_size = b
            cur_complete[ctx] = t_next
        self._idx = i
        # inlined TaskPool.finish + TaskPool.take, summed
        pool._remaining -= sum_b
        pool._outstanding += sum_b - sum_done
        pool._done += sum_done
        if collapsed:
            if chg_done or chg_polls:
                if obs.enabled:
                    obs.tasks_pulled(chg_done)
                    obs.flag_polled(chg_polls)
                if prof.enabled:
                    prof.on_batch(chg_done, chg_polls)
            if aprof.enabled:
                aprof.on_macro_collapse(collapsed)

    # ------------------------------------------------------------------
    # dissolution
    # ------------------------------------------------------------------
    def dissolve(self, now: float) -> None:
        """Return the grid to per-batch eventing: commit history up to
        ``now``, drop the unreached plan, and rebuild each context's
        in-flight batch with a real completion event.

        Called at host flag-write time — strictly before the write's
        device visibility — and on any external pool interference, so
        the reference loop and the macro loop observe every subsequent
        poll boundary identically.
        """
        if self._dissolved:
            return
        self.sync(now)
        self._dissolved = True
        maybe_cancel(self._cont)
        self._cont = None
        for g in self.grids:
            if g._macro is self:
                g._macro = None
        if self.pool._cohort is self:
            self.pool._cohort = None
        sim = self.sim
        cur_complete = self._cur_complete
        claim_order = self._claim_order
        # A context whose chain reached exhaustion holds its *final*-
        # completion event; one still mid-plan (paused replay) holds
        # none. Replace/install a completion for each context's current
        # in-flight batch. Scheduling order decides event seq numbers,
        # and the reference loop assigns them at claim time — so
        # reschedule in claim order, keeping same-instant completions
        # firing exactly as they would there.
        # a context placed after absorb (partially-placed grid: its
        # start is what triggered this dissolve) was never absorbed and
        # has no in-flight batch to reconstruct — skip it
        live = [
            c for g in self.grids for c in g.contexts if c in claim_order
        ]
        live.sort(key=claim_order.__getitem__)
        for ctx in live:
            t = cur_complete[ctx]
            maybe_cancel(ctx._completion)
            ctx._completion = sim.schedule_event(
                t if t > now else now,
                ctx._on_batch_complete,
                ctx._batch_label,
            )
