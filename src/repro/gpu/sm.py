"""Streaming multiprocessor resource accounting.

An SM tracks the CTA contexts currently resident on it; the resource
charges themselves live in a flat :class:`SMBank` — parallel int lists
(free CTA slots, threads, warps, registers, shared memory; one entry per
SM) owned by the device. The hardware dispatcher's hottest scan
(:meth:`repro.gpu.gpu.SimulatedGPU._pick_sm`) walks those lists with
plain integer compares and indexing, no per-SM attribute chasing;
spatial preemption uses the SM *id* (the paper reads it from the
``%smid`` register) to decide which CTAs must yield.

Footprints are pure functions of ``(usage, spec)`` — both frozen
dataclasses — computed once per pair and cached process-wide
(:func:`repro.gpu.occupancy.cta_footprint`, shared with the occupancy
calculator so admission and reporting can never disagree): the
dispatcher admits and releases thousands of identical CTAs per run, and
re-doing the ceil/div math each time dominated the admission path.
"""

from __future__ import annotations

from typing import List, Set

from ..errors import ResourceError
from ..obs.profiler import NULL_PROFILER
from ..obs.recorder import NULL_OBS
from .device import GPUDeviceSpec
from .kernel import ResourceUsage
from .occupancy import cta_footprint

__all__ = ["SM", "SMBank", "cta_footprint"]


class SMBank:
    """Array-of-int occupancy state for all SMs of one device.

    One entry per SM in each parallel list; the limits are scalars (all
    SMs of a device are identical). The admission scan reads the lists
    directly; :class:`SM` methods write through to them.
    """

    __slots__ = (
        "n", "free", "threads", "warps", "regs", "smem",
        "max_ctas", "max_threads", "max_warps", "max_regs", "max_smem",
    )

    def __init__(self, spec: GPUDeviceSpec, n: int):
        self.n = n
        self.max_ctas = spec.max_ctas_per_sm
        self.max_threads = spec.max_threads_per_sm
        self.max_warps = spec.max_warps_per_sm
        self.max_regs = spec.registers_per_sm
        self.max_smem = spec.shared_mem_per_sm
        #: free CTA slots per SM (``max_ctas - len(resident)``)
        self.free: List[int] = [self.max_ctas] * n
        self.threads: List[int] = [0] * n
        self.warps: List[int] = [0] * n
        self.regs: List[int] = [0] * n
        self.smem: List[int] = [0] * n


class SM:
    """One streaming multiprocessor: its resident set plus a view into
    the device's :class:`SMBank` slot."""

    __slots__ = ("sm_id", "spec", "resident", "bank", "obs", "prof")

    def __init__(
        self, sm_id: int, spec: GPUDeviceSpec, bank: SMBank = None
    ):
        self.sm_id = sm_id
        self.spec = spec
        self.resident: Set[object] = set()   # CTA contexts (opaque here)
        #: shared device-wide occupancy arrays; a standalone SM (unit
        #: tests) gets a private single-entry bank, indexed by sm_id = 0
        #: — device-built SMs are indexed by their sm_id
        self.bank = bank if bank is not None else SMBank(spec, sm_id + 1)
        #: observability recorder; set by the owning device
        self.obs = NULL_OBS
        #: hot-path self-profiler; set by the owning device
        self.prof = NULL_PROFILER

    # -- bank views (diagnostics/monitors; the hot path reads the bank) --
    @property
    def used_threads(self) -> int:
        return self.bank.threads[self.sm_id]

    @property
    def used_warps(self) -> int:
        return self.bank.warps[self.sm_id]

    @property
    def used_regs(self) -> int:
        return self.bank.regs[self.sm_id]

    @property
    def used_smem(self) -> int:
        return self.bank.smem[self.sm_id]

    # -- footprint math --------------------------------------------------
    def _footprint(self, usage: ResourceUsage):
        return cta_footprint(usage, self.spec)

    def can_host(self, usage: ResourceUsage) -> bool:
        """Would one more CTA of this footprint fit right now?"""
        warps, regs, smem = cta_footprint(usage, self.spec)
        return self.can_host_fp(usage.threads_per_cta, warps, regs, smem)

    def can_host_fp(self, threads: int, warps: int, regs: int, smem: int) -> bool:
        """``can_host`` with a precomputed footprint — the same flat-array
        screen the dispatcher's scan applies, one SM at a time."""
        bank = self.bank
        i = self.sm_id
        return (
            bank.free[i] > 0
            and bank.threads[i] + threads <= bank.max_threads
            and bank.warps[i] + warps <= bank.max_warps
            and bank.regs[i] + regs <= bank.max_regs
            and bank.smem[i] + smem <= bank.max_smem
        )

    def admit(self, context, usage: ResourceUsage) -> None:
        """Place a CTA context on this SM, charging its resources."""
        if not self.can_host(usage):
            raise ResourceError(
                f"SM {self.sm_id} cannot host CTA {usage} "
                f"(resident={len(self.resident)})"
            )
        warps, regs, smem = cta_footprint(usage, self.spec)
        self.admit_fp(context, usage.threads_per_cta, warps, regs, smem)

    def admit_fp(
        self, context, threads: int, warps: int, regs: int, smem: int
    ) -> None:
        """``admit`` with a precomputed footprint; the caller (the
        dispatcher) has already verified ``can_host_fp``."""
        resident = self.resident
        if context in resident:
            raise ResourceError(f"context already resident on SM {self.sm_id}")
        resident.add(context)
        bank = self.bank
        i = self.sm_id
        bank.free[i] -= 1
        bank.threads[i] += threads
        bank.warps[i] += warps
        bank.regs[i] += regs
        bank.smem[i] += smem
        if self.obs.enabled:
            self.obs.sm_admitted(self.sm_id, len(resident))
        if self.prof.enabled:
            self.prof.on_sm_admit(self.sm_id, len(resident))

    def release(self, context, usage: ResourceUsage) -> None:
        """Remove a CTA context, returning its resources."""
        warps, regs, smem = cta_footprint(usage, self.spec)
        self.release_fp(context, usage.threads_per_cta, warps, regs, smem)

    def release_fp(
        self, context, threads: int, warps: int, regs: int, smem: int
    ) -> None:
        """``release`` with a precomputed footprint."""
        resident = self.resident
        if context not in resident:
            raise ResourceError(f"context not resident on SM {self.sm_id}")
        resident.remove(context)
        bank = self.bank
        i = self.sm_id
        bank.free[i] += 1
        bank.threads[i] -= threads
        bank.warps[i] -= warps
        bank.regs[i] -= regs
        bank.smem[i] -= smem
        if min(bank.threads[i], bank.warps[i], bank.regs[i], bank.smem[i]) < 0:
            raise ResourceError(
                f"SM {self.sm_id} resource accounting went negative"
            )
        if self.obs.enabled:
            self.obs.sm_released(self.sm_id, len(resident))
        if self.prof.enabled:
            self.prof.on_sm_release(self.sm_id, len(resident))

    @property
    def idle(self) -> bool:
        return not self.resident

    def free_cta_slots(self) -> int:
        return self.bank.free[self.sm_id]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SM(id={self.sm_id}, resident={len(self.resident)}, "
            f"threads={self.used_threads})"
        )
