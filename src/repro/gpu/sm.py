"""Streaming multiprocessor resource accounting.

An SM tracks the CTA contexts currently resident on it, charging the
rounded register/shared-memory/thread footprints computed by
:mod:`repro.gpu.occupancy`. The hardware dispatcher asks SMs whether they
can host a CTA; spatial preemption uses the SM *id* (the paper reads it
from the ``%smid`` register) to decide which CTAs must yield.

Footprints are pure functions of ``(usage, spec)`` — both frozen
dataclasses — so they are computed once per pair and cached
process-wide (:func:`cta_footprint`): the dispatcher admits and
releases thousands of identical CTAs per run, and re-doing the ceil/div
math each time dominated the admission path. The per-SM counters are
kept as plain slot attributes (no properties) so the dispatcher's
``can_host`` scan is five integer comparisons.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from ..errors import ResourceError
from ..obs.profiler import NULL_PROFILER
from ..obs.recorder import NULL_OBS
from .device import GPUDeviceSpec
from .kernel import ResourceUsage
from .occupancy import ceil_to

#: (warps, regs, smem) per CTA, cached per (usage, spec) — both are
#: frozen/hashable, and a workload uses a handful of distinct pairs.
_FOOTPRINTS: Dict[Tuple[ResourceUsage, GPUDeviceSpec], Tuple[int, int, int]] = {}


def cta_footprint(
    usage: ResourceUsage, spec: GPUDeviceSpec
) -> Tuple[int, int, int]:
    """Rounded ``(warps, regs, smem)`` one CTA of ``usage`` charges on an
    SM of ``spec``. Memoized: admit *and* release of every CTA ask for
    the same few footprints."""
    key = (usage, spec)
    fp = _FOOTPRINTS.get(key)
    if fp is None:
        warps = -(-usage.threads_per_cta // spec.warp_size)
        regs = (
            ceil_to(
                usage.regs_per_thread * spec.warp_size,
                spec.register_alloc_unit,
            )
            * warps
        )
        smem = ceil_to(usage.shared_mem_per_cta, spec.shared_mem_alloc_unit)
        fp = _FOOTPRINTS[key] = (warps, regs, smem)
    return fp


class SM:
    """One streaming multiprocessor's occupancy state."""

    __slots__ = (
        "sm_id", "spec", "resident", "used_threads", "used_warps",
        "used_regs", "used_smem", "obs", "prof",
        "_max_ctas", "_max_threads", "_max_warps", "_max_regs", "_max_smem",
    )

    def __init__(self, sm_id: int, spec: GPUDeviceSpec):
        self.sm_id = sm_id
        self.spec = spec
        self.resident: Set[object] = set()   # CTA contexts (opaque here)
        self.used_threads = 0
        self.used_warps = 0
        self.used_regs = 0
        self.used_smem = 0
        # device limits flattened to slots: the can_host scan runs per
        # (grid, SM) pair on every dispatch round
        self._max_ctas = spec.max_ctas_per_sm
        self._max_threads = spec.max_threads_per_sm
        self._max_warps = spec.max_warps_per_sm
        self._max_regs = spec.registers_per_sm
        self._max_smem = spec.shared_mem_per_sm
        #: observability recorder; set by the owning device
        self.obs = NULL_OBS
        #: hot-path self-profiler; set by the owning device
        self.prof = NULL_PROFILER

    # -- footprint math --------------------------------------------------
    def _footprint(self, usage: ResourceUsage):
        return cta_footprint(usage, self.spec)

    def can_host(self, usage: ResourceUsage) -> bool:
        """Would one more CTA of this footprint fit right now?"""
        warps, regs, smem = cta_footprint(usage, self.spec)
        return (
            len(self.resident) < self._max_ctas
            and self.used_threads + usage.threads_per_cta <= self._max_threads
            and self.used_warps + warps <= self._max_warps
            and self.used_regs + regs <= self._max_regs
            and self.used_smem + smem <= self._max_smem
        )

    def can_host_fp(self, threads: int, warps: int, regs: int, smem: int) -> bool:
        """``can_host`` with a precomputed footprint — the dispatcher
        resolves the footprint once per grid, then scans every SM."""
        return (
            len(self.resident) < self._max_ctas
            and self.used_threads + threads <= self._max_threads
            and self.used_warps + warps <= self._max_warps
            and self.used_regs + regs <= self._max_regs
            and self.used_smem + smem <= self._max_smem
        )

    def admit(self, context, usage: ResourceUsage) -> None:
        """Place a CTA context on this SM, charging its resources."""
        if not self.can_host(usage):
            raise ResourceError(
                f"SM {self.sm_id} cannot host CTA {usage} "
                f"(resident={len(self.resident)})"
            )
        warps, regs, smem = cta_footprint(usage, self.spec)
        self.admit_fp(context, usage.threads_per_cta, warps, regs, smem)

    def admit_fp(
        self, context, threads: int, warps: int, regs: int, smem: int
    ) -> None:
        """``admit`` with a precomputed footprint; the caller (the
        dispatcher) has already verified ``can_host_fp``."""
        resident = self.resident
        if context in resident:
            raise ResourceError(f"context already resident on SM {self.sm_id}")
        resident.add(context)
        self.used_threads += threads
        self.used_warps += warps
        self.used_regs += regs
        self.used_smem += smem
        if self.obs.enabled:
            self.obs.sm_admitted(self.sm_id, len(resident))
        if self.prof.enabled:
            self.prof.on_sm_admit(self.sm_id, len(resident))

    def release(self, context, usage: ResourceUsage) -> None:
        """Remove a CTA context, returning its resources."""
        warps, regs, smem = cta_footprint(usage, self.spec)
        self.release_fp(context, usage.threads_per_cta, warps, regs, smem)

    def release_fp(
        self, context, threads: int, warps: int, regs: int, smem: int
    ) -> None:
        """``release`` with a precomputed footprint."""
        resident = self.resident
        if context not in resident:
            raise ResourceError(f"context not resident on SM {self.sm_id}")
        resident.remove(context)
        self.used_threads -= threads
        self.used_warps -= warps
        self.used_regs -= regs
        self.used_smem -= smem
        if min(self.used_threads, self.used_warps, self.used_regs, self.used_smem) < 0:
            raise ResourceError(
                f"SM {self.sm_id} resource accounting went negative"
            )
        if self.obs.enabled:
            self.obs.sm_released(self.sm_id, len(resident))
        if self.prof.enabled:
            self.prof.on_sm_release(self.sm_id, len(resident))

    @property
    def idle(self) -> bool:
        return not self.resident

    def free_cta_slots(self) -> int:
        return self._max_ctas - len(self.resident)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SM(id={self.sm_id}, resident={len(self.resident)}, "
            f"threads={self.used_threads})"
        )
