"""Streaming multiprocessor resource accounting.

An SM tracks the CTA contexts currently resident on it, charging the
rounded register/shared-memory/thread footprints computed by
:mod:`repro.gpu.occupancy`. The hardware dispatcher asks SMs whether they
can host a CTA; spatial preemption uses the SM *id* (the paper reads it
from the ``%smid`` register) to decide which CTAs must yield.
"""

from __future__ import annotations

from typing import Set

from ..errors import ResourceError
from ..obs.profiler import NULL_PROFILER
from ..obs.recorder import NULL_OBS
from .device import GPUDeviceSpec
from .kernel import ResourceUsage
from .occupancy import ceil_to


class SM:
    """One streaming multiprocessor's occupancy state."""

    def __init__(self, sm_id: int, spec: GPUDeviceSpec):
        self.sm_id = sm_id
        self.spec = spec
        self.resident: Set[object] = set()   # CTA contexts (opaque here)
        self.used_threads = 0
        self.used_warps = 0
        self.used_regs = 0
        self.used_smem = 0
        #: observability recorder; set by the owning device
        self.obs = NULL_OBS
        #: hot-path self-profiler; set by the owning device
        self.prof = NULL_PROFILER

    # -- footprint math --------------------------------------------------
    def _footprint(self, usage: ResourceUsage):
        warps = -(-usage.threads_per_cta // self.spec.warp_size)
        regs = (
            ceil_to(
                usage.regs_per_thread * self.spec.warp_size,
                self.spec.register_alloc_unit,
            )
            * warps
        )
        smem = ceil_to(usage.shared_mem_per_cta, self.spec.shared_mem_alloc_unit)
        return warps, regs, smem

    def can_host(self, usage: ResourceUsage) -> bool:
        """Would one more CTA of this footprint fit right now?"""
        warps, regs, smem = self._footprint(usage)
        return (
            len(self.resident) < self.spec.max_ctas_per_sm
            and self.used_threads + usage.threads_per_cta
            <= self.spec.max_threads_per_sm
            and self.used_warps + warps <= self.spec.max_warps_per_sm
            and self.used_regs + regs <= self.spec.registers_per_sm
            and self.used_smem + smem <= self.spec.shared_mem_per_sm
        )

    def admit(self, context, usage: ResourceUsage) -> None:
        """Place a CTA context on this SM, charging its resources."""
        if context in self.resident:
            raise ResourceError(f"context already resident on SM {self.sm_id}")
        if not self.can_host(usage):
            raise ResourceError(
                f"SM {self.sm_id} cannot host CTA {usage} "
                f"(resident={len(self.resident)})"
            )
        warps, regs, smem = self._footprint(usage)
        self.resident.add(context)
        self.used_threads += usage.threads_per_cta
        self.used_warps += warps
        self.used_regs += regs
        self.used_smem += smem
        if self.obs.enabled:
            self.obs.sm_admitted(self.sm_id, len(self.resident))
        if self.prof.enabled:
            self.prof.on_sm_admit(self.sm_id, len(self.resident))

    def release(self, context, usage: ResourceUsage) -> None:
        """Remove a CTA context, returning its resources."""
        if context not in self.resident:
            raise ResourceError(f"context not resident on SM {self.sm_id}")
        warps, regs, smem = self._footprint(usage)
        self.resident.remove(context)
        self.used_threads -= usage.threads_per_cta
        self.used_warps -= warps
        self.used_regs -= regs
        self.used_smem -= smem
        if min(self.used_threads, self.used_warps, self.used_regs, self.used_smem) < 0:
            raise ResourceError(
                f"SM {self.sm_id} resource accounting went negative"
            )
        if self.obs.enabled:
            self.obs.sm_released(self.sm_id, len(self.resident))
        if self.prof.enabled:
            self.prof.on_sm_release(self.sm_id, len(self.resident))

    @property
    def idle(self) -> bool:
        return not self.resident

    def free_cta_slots(self) -> int:
        return self.spec.max_ctas_per_sm - len(self.resident)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SM(id={self.sm_id}, resident={len(self.resident)}, "
            f"threads={self.used_threads})"
        )
