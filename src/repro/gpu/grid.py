"""A launched kernel grid and its lifecycle on the device.

States::

    QUEUED ──(first context placed)──> RUNNING ──(pool drained)──> COMPLETE
                                          │
                                          └──(all contexts yield)──> PREEMPTED

A spatially-preempted grid stays RUNNING with fewer contexts (the paper:
"all the other CTAs keep running until all tasks of the victim kernel are
processed"). A PREEMPTED grid is terminal; resuming relaunches a fresh
grid that *shares the same* :class:`~repro.gpu.kernel.TaskPool`, so only
the unfinished tasks run again.
"""

from __future__ import annotations

import enum
import math
import random
from typing import Callable, List, Optional, Set

from ..errors import SchedulingError, SimulationError
from .cta import CTAContext, CTAState
from .device import CostModel, GPUDeviceSpec
from .kernel import (
    KernelImage,
    KernelMode,
    LaunchConfig,
    TaskPool,
)
from .macro import MacroCohort
from .memory import PinnedFlag, should_yield
from .occupancy import max_ctas_per_sm
from .sim import Simulator
from .sm import cta_footprint


class GridState(enum.Enum):
    """Lifecycle of a launched grid (see the module docstring)."""

    QUEUED = "queued"
    RUNNING = "running"
    PREEMPTED = "preempted"
    COMPLETE = "complete"


class Grid:
    """One kernel launch being executed by the simulated device."""

    _next_id = 1

    def __init__(
        self,
        sim: Simulator,
        spec: GPUDeviceSpec,
        kernel: KernelImage,
        config: LaunchConfig,
        pool: Optional[TaskPool] = None,
        flag: Optional[PinnedFlag] = None,
        rng: Optional[random.Random] = None,
        tag: Optional[dict] = None,
        on_complete: Optional[Callable[["Grid"], None]] = None,
        on_preempted: Optional[Callable[["Grid"], None]] = None,
    ):
        if kernel.mode is KernelMode.PERSISTENT and flag is None:
            raise SimulationError(
                f"persistent kernel {kernel.name} launched without a flag"
            )
        self.grid_id = Grid._next_id
        Grid._next_id += 1
        self.sim = sim
        self.spec = spec
        self.costs: CostModel = spec.costs
        self.kernel = kernel
        self.config = config
        self.pool = pool if pool is not None else TaskPool(config.total_tasks)
        self.flag = flag
        self.rng = rng
        self.tag = tag or {}
        self.on_complete = on_complete
        self.on_preempted = on_preempted

        self.state = GridState.QUEUED
        self.launched_at = sim.now
        self.first_dispatch_at: Optional[float] = None
        self.ended_at: Optional[float] = None
        self.preempt_requested_at: Optional[float] = None

        self.contexts: Set[CTAContext] = set()
        self._next_ctx_id = 0
        self._placed = 0
        self.yielded_contexts = 0
        self.finished_contexts = 0
        self.ctas_per_sm = max_ctas_per_sm(spec, kernel.resources)
        # (threads, warps, regs, smem) one CTA charges on an SM, resolved
        # once: the dispatcher screens every SM against it on every
        # placement, and retire returns it — no per-call footprint lookup.
        warps, regs, smem = cta_footprint(kernel.resources, spec)
        self._footprint = (kernel.resources.threads_per_cta, warps, regs, smem)
        self._terminal = False
        # Frozen hot-path constants: kernel mode, amortizing factor and
        # the expected steady-state width never change after launch, and
        # the batch-size planner consults them for every batch.
        self._persistent = kernel.mode is KernelMode.PERSISTENT
        self._amortize_l = kernel.amortize_l
        capacity = spec.num_sms * self.ctas_per_sm
        if self._persistent:
            self._parallel_width = max(1, min(capacity, config.grid_ctas))
        else:
            self._parallel_width = max(1, min(capacity, self.pool.total))
        #: memoized batch-size plans: (remaining, width) -> batch size
        self._batch_plans = {}
        #: active macro-event cohort (repro.gpu.macro), if any
        self._macro: Optional[MacroCohort] = None

        if self.flag is not None and self._persistent:
            self.flag.watch(self._on_flag_write)

    # ------------------------------------------------------------------
    # dispatcher interface
    # ------------------------------------------------------------------
    @property
    def unplaced_contexts(self) -> int:
        """CTAs launched but not yet hosted on an SM."""
        if self._terminal:
            return 0
        # the *synced* remaining: a partially-placed grid may be inside
        # a macro cohort whose claims commit lazily, and the dispatcher
        # must see exactly what the per-batch reference loop would.
        # (Inlined sync check — this runs per grid per dispatch scan.)
        pool = self.pool
        c = pool._cohort
        if c is not None:
            c.sync(c.sim.clock._now)
        if self._persistent:
            remaining = self.config.grid_ctas - self._placed
            # don't place more workers than tasks left to claim
            tasks = pool._remaining
            if remaining > tasks:
                remaining = tasks
            return remaining if remaining > 0 else 0
        # original: one CTA per task still waiting in the hardware queue
        return pool._remaining

    @property
    def blocks_queue(self) -> bool:
        """Does this grid still hold the head of the hardware FIFO?

        Later grids' CTAs cannot be dispatched while this is true (§2.1:
        a kernel occupies the GPU until all its CTAs are dispatched).
        """
        return not self._terminal and self.unplaced_contexts > 0

    @property
    def is_terminal(self) -> bool:
        return self._terminal

    def place_context(self, sm) -> CTAContext:
        """Dispatcher hosts one CTA of this grid on ``sm``."""
        if self.is_terminal:
            raise SchedulingError(f"placing context on terminal grid {self}")
        if self.unplaced_contexts <= 0:
            raise SchedulingError(f"grid {self} has no CTAs waiting")
        if self.first_dispatch_at is None:
            self.first_dispatch_at = self.sim.now
            self.state = GridState.RUNNING
        # Original kernels: a pending preemption flag cannot stop CTAs,
        # but placement still consumes the queue. Persistent kernels with
        # a yield-demanding flag visible *now* would quit instantly; the
        # dispatcher avoids that by consulting `wants_dispatch`.
        self._placed += 1
        ctx = CTAContext(self, self._next_ctx_id, sm)
        self._next_ctx_id += 1
        self.contexts.add(ctx)
        return ctx

    def wants_dispatch(self) -> bool:
        """Should the dispatcher currently place CTAs of this grid?

        A persistent grid whose flag demands a full yield should not have
        new CTAs placed (the host has conceptually not relaunched it).
        """
        if self.unplaced_contexts <= 0:
            return False
        if (
            self._persistent
            and self.flag is not None
            and should_yield(
                0, self.flag.last_written, spatial_capable=False
            )
        ):
            # any pending non-zero flag: pause placement of new CTAs on
            # yielding SMs; for simplicity pause all placement while a
            # temporal (all-SM) preemption is pending
            if not self.kernel.supports_spatial or (
                self.flag.last_written >= self.spec.num_sms
            ):
                return False
        return True

    # ------------------------------------------------------------------
    # context callbacks
    # ------------------------------------------------------------------
    @property
    def parallel_width(self) -> int:
        """Expected steady-state CTA concurrency of this grid, used to
        size guided-scheduling batches. Using the *expected* width (not
        the momentary context count) keeps early batches from starving
        later contexts."""
        return self._parallel_width

    def next_batch_size(self, ctx: CTAContext) -> int:
        """Size of the next task batch for ``ctx`` (guided scheduling).

        The width is the larger of this grid's expected concurrency and
        the pool-wide live worker count: a shared pool may be drained by
        several grids at once (resume / top-up), and using only this
        grid's width would let its contexts over-claim and straggle.
        Plans are memoized on ``(remaining, width)`` — contexts of one
        wave repeatedly ask for the same plan."""
        pool = self.pool
        remaining = pool._remaining
        width = self._parallel_width
        workers = pool._workers
        if workers > width:
            width = workers
        key = (remaining, width)
        size = self._batch_plans.get(key)
        if size is not None:
            return size
        # guided self-scheduling, inlined from kernel.guided_batch
        # (same math.ceil expression, so sizes are identical)
        if remaining <= 0:
            size = 0
        else:
            size = math.ceil(remaining / (2 * width))
            if size < 1:
                size = 1
            if size > remaining:
                size = remaining
            if self._persistent:
                # Persistent: batches stay multiples of L so poll
                # boundaries are exact, except near the tail where
                # sub-L batches are allowed — real CTAs pull one task
                # at a time, so work distribution is task-granular even
                # though polls are L-spaced.
                L = self._amortize_l
                if size > L:
                    size = (size // L) * L
                if size > remaining:
                    size = remaining
        self._batch_plans[key] = size
        return size

    def try_macro(self, trigger: CTAContext, now: float) -> bool:
        """Absorb the pool's batch chain into a macro-event cohort if it
        is in steady state (see :mod:`repro.gpu.macro`): every grid
        draining the pool persistent, every flag steady (no demanding
        write in flight, and the visible value yields no live context),
        and every pool worker accounted for by those grids. Returns True
        iff ``trigger``'s claim was taken over by the cohort.

        A partially-placed grid may absorb: a later CTA placement joins
        the pool and dissolves the cohort *before* its first claim, so
        the interleaving is unchanged. Inside a dispatch burst, though,
        a partially-placed pool is rejected — each placement's start
        would absorb the cohort only for the burst's next placement to
        dissolve it, O(n²) churn for a plan that commits nothing. Once
        every pool grid is fully placed no same-pool join can follow in
        the burst, so the last placement's own start may absorb."""
        device = self.device
        dispatching = device is not None and device._dispatching
        pool = self.pool
        if pool._cohort is not None:
            return False
        total = 0
        for g, cnt in pool._grids.items():
            if len(g.contexts) != cnt:
                return False
            if dispatching and g._placed < g.config.grid_ctas:
                return False
            total += cnt
            if not g._persistent:
                # non-persistent contexts never poll and never yield —
                # their chain is trivially steady (a flag write would
                # still dissolve the cohort, harmlessly)
                continue
            flag = g.flag
            if flag is not None and flag._demanding:
                last = flag._history[-1]
                if last[0] > now:
                    return False
                value = last[1]
                if value != 0:
                    # A visible, steady non-zero value is inert when
                    # every live context survives it (spatial:
                    # sm_id >= value). Survivors poll, observe, and keep
                    # claiming — exactly the chain the cohort
                    # precomputes: the newest write shadows older ones
                    # at every future poll, so replan is a no-op, and
                    # any later write dissolves the cohort before it
                    # becomes visible.
                    for ctx in g.contexts:
                        if should_yield(ctx.sm.sm_id, value, ctx._spatial):
                            return False
        if total != pool._workers:
            return False
        return MacroCohort.absorb(self, trigger, now)

    def notify_progress(self) -> None:
        """Called by contexts when tasks complete (hook for the runtime)."""

    def context_done(self, ctx: CTAContext) -> None:
        self.finished_contexts += 1
        self._retire(ctx)

    def context_yielded(self, ctx: CTAContext) -> None:
        self.yielded_contexts += 1
        self._retire(ctx)

    def _retire(self, ctx: CTAContext) -> None:
        self.contexts.discard(ctx)
        ctx.sm.release_fp(ctx, *self._footprint)
        self._check_terminal()
        # tell the device a slot freed up
        if self.device is not None:
            self.device.on_context_released(ctx)

    # ------------------------------------------------------------------
    # flag handling
    # ------------------------------------------------------------------
    def _on_flag_write(self, visible_at: float, value: int) -> None:
        if self.is_terminal:
            return
        # a macro cohort cannot span a flag write: return to per-batch
        # eventing *now* — strictly before the write's visibility — so
        # every poll boundary the reference loop observes still happens
        if self._macro is not None:
            self._macro.dissolve(self.sim.clock._now)
        if value > 0 and self.preempt_requested_at is None:
            self.preempt_requested_at = self.sim.now
        # replan in ctx-id order: `contexts` is a set whose iteration
        # order varies between processes (id-based hashing), and the
        # order decides event seq numbers — sorting keeps replayed
        # schedules bit-identical for the golden-trace tests
        for ctx in sorted(self.contexts, key=lambda c: c.ctx_id):
            ctx.replan()
        # A grid preempted before any CTA was hosted (e.g. the flag was
        # written while the launch command was still in flight) drains
        # instantly: its CTAs would quit at their very first poll. Going
        # terminal here also stops it from blocking the hardware FIFO.
        if not self.contexts and self._demands_full_yield():
            self._finish(GridState.PREEMPTED)

    def _demands_full_yield(self) -> bool:
        """Is the host currently requesting a whole-GPU yield?"""
        if not self._persistent or self.flag is None:
            return False
        value = self.flag.last_written
        if value <= 0:
            return False
        return not self.kernel.supports_spatial or value >= self.spec.num_sms

    # ------------------------------------------------------------------
    # terminal states
    # ------------------------------------------------------------------
    def _check_terminal(self) -> None:
        if self.is_terminal or self.contexts:
            return
        if self.pool.complete:
            self._finish(GridState.COMPLETE)
        elif self.pool.exhausted:
            # The pool has no unclaimed tasks but siblings sharing it
            # (e.g. a spatial top-up grid of the same invocation) still
            # hold outstanding work. This grid's workers all saw
            # pull_task() == NULL and exited: it is complete; the last
            # sibling observes pool.complete and finishes the invocation.
            self._finish(GridState.COMPLETE)
        elif self._persistent:
            flag_pending = self.flag is not None and self.flag.last_written > 0
            if flag_pending or self.yielded_contexts > 0:
                # Either the flag still demands a yield, or the workers
                # left because of a yield whose flag has since been
                # cleared (e.g. spatial churn: preempt -> guest done ->
                # clear -> this grid's last yielder retires after the
                # clear). Both are preemption outcomes.
                self._finish(GridState.PREEMPTED)
            elif self.unplaced_contexts == 0:
                # workers all *finished* with work outstanding and no
                # flag was ever involved: impossible by construction
                raise SchedulingError(
                    f"grid {self} lost all contexts with work remaining"
                )

    def _finish(self, state: GridState) -> None:
        if self._macro is not None:
            self._macro.dissolve(self.sim.clock._now)
        self.state = state
        self._terminal = True
        self.ended_at = self.sim.now
        if self.flag is not None and self._persistent:
            self.flag.unwatch(self._on_flag_write)
        if self.device is not None:
            self.device.on_grid_terminal(self)
        if state is GridState.COMPLETE and self.on_complete:
            self.on_complete(self)
        if state is GridState.PREEMPTED and self.on_preempted:
            self.on_preempted(self)

    # set by the device at launch
    device = None

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    @property
    def turnaround_us(self) -> Optional[float]:
        if self.ended_at is None:
            return None
        return self.ended_at - self.launched_at

    @property
    def preemption_latency_us(self) -> Optional[float]:
        """Request-to-fully-yielded latency (temporal preemption)."""
        if self.state is not GridState.PREEMPTED or self.preempt_requested_at is None:
            return None
        return self.ended_at - self.preempt_requested_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Grid#{self.grid_id}({self.kernel.name}, {self.state.value}, "
            f"pool={self.pool})"
        )
