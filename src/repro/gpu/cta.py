"""CTA execution contexts.

A :class:`CTAContext` is one resident CTA slot executing a grid's tasks.
Original kernels and FLEP persistent kernels run through the same context
machinery (see :mod:`repro.gpu.kernel`); the differences are:

========================  =================  ==========================
                          ORIGINAL           PERSISTENT (FLEP)
========================  =================  ==========================
task pull cost            0 (hardware)       ``task_pull_us`` (atomic)
flag poll                 never              every ``L`` tasks
preemption                impossible         at the next poll boundary
========================  =================  ==========================

To keep event counts low the context claims a *batch* of tasks and
schedules a single completion event. When the host writes the preemption
flag, the context re-plans: it computes the first poll boundary at which
the device-visible flag value demands a yield, finishes exactly the tasks
processed by then, returns the rest to the pool, and releases its SM.
This reproduces Figure 4's semantics exactly while staying
``O(contexts x preemption epochs)`` in events.
"""

from __future__ import annotations

import enum
import math
from typing import Optional, TYPE_CHECKING

from ..errors import SchedulingError, SimulationError
from ..obs.profiler import NULL_PROFILER
from ..obs.recorder import NULL_OBS
from .events import EventHandle, maybe_cancel
from .kernel import KernelMode
from .memory import should_yield

if TYPE_CHECKING:  # pragma: no cover
    from .grid import Grid
    from .sm import SM

_EPS = 1e-9


class CTAState(enum.Enum):
    """Lifecycle of one resident CTA slot."""

    RUNNING = "running"
    YIELDED = "yielded"      # quit due to a preemption flag
    FINISHED = "finished"    # pool exhausted


class CTAContext:
    """One resident CTA slot processing batches of tasks."""

    def __init__(self, grid: "Grid", ctx_id: int, sm: "SM"):
        self.grid = grid
        self.ctx_id = ctx_id
        self.sm = sm
        self.state = CTAState.RUNNING
        self.tasks_done = 0
        self.started_at = grid.sim.now
        self.ended_at: Optional[float] = None
        # Instrumentation handles, cached as plain attributes: the batch
        # loop is the simulator's hottest path and must not pay property
        # getters per batch. Hubs/profilers are installed on the device
        # before launch, so context-creation-time capture is safe.
        device = grid.device
        self._obs = device.obs if device is not None else NULL_OBS
        self._prof = device.prof if device is not None else NULL_PROFILER
        # per-context task-time multiplier (input irregularity)
        self.task_mult = grid.kernel.task_model.sample_multiplier(grid.rng)

        # current batch
        self._batch_start = 0.0
        self._batch_size = 0
        self._completion: Optional[EventHandle] = None
        self._yield_event: Optional[EventHandle] = None
        self._started = False
        #: tasks processed since the last flag poll, in [0, L). Polls
        #: happen exactly every L tasks *across* batch boundaries, so a
        #: sub-L tail batch does not cost an extra poll.
        self._since_poll = 0

    def start(self) -> None:
        """Begin execution. Called by the device *after* SM admission, so
        that resource accounting is consistent even if the context
        finishes instantly (empty pool)."""
        if self._started:
            raise SchedulingError(f"context {self!r} started twice")
        self._started = True
        self.grid.pool.worker_joined()
        self._begin_next_batch()

    # ------------------------------------------------------------------
    # timing helpers
    # ------------------------------------------------------------------
    @property
    def _is_persistent(self) -> bool:
        return self.grid.kernel.mode is KernelMode.PERSISTENT

    @property
    def _task_time(self) -> float:
        return self.grid.kernel.task_model.mean_task_us * self.task_mult

    @property
    def _per_task(self) -> float:
        """Time for one task including the atomic pull."""
        pull = self.grid.costs.task_pull_us if self._is_persistent else 0.0
        return self._task_time + pull

    @property
    def _poll_cost(self) -> float:
        return self.grid.costs.pinned_poll_us if self._is_persistent else 0.0

    @property
    def _amortize(self) -> int:
        return self.grid.kernel.amortize_l if self._is_persistent else 1

    def _first_poll_index(self) -> int:
        """Task index within the current batch at which the first poll
        fires: 0 if the batch starts on a poll boundary, else the task
        that completes the current L-group."""
        L = self._amortize
        return (L - self._since_poll) % L

    def _polls_in_batch(self, batch: int) -> int:
        """Number of flag polls performed while processing ``batch``
        tasks, given the persistent offset."""
        if not self._is_persistent or batch <= 0:
            return 0
        first = self._first_poll_index()
        if first >= batch:
            return 0
        return 1 + (batch - 1 - first) // self._amortize

    def _batch_duration(self, batch: int) -> float:
        return (
            self._polls_in_batch(batch) * self._poll_cost
            + batch * self._per_task
        )

    def _poll_read_start(self, m: int) -> float:
        """Time the m-th in-batch poll (m >= 0) begins reading the flag:
        all earlier polls plus all earlier tasks have completed."""
        j = self._first_poll_index() + m * self._amortize
        return self._batch_start + m * self._poll_cost + j * self._per_task

    def _poll_task_index(self, m: int) -> int:
        """Tasks of this batch completed when the m-th poll fires."""
        return self._first_poll_index() + m * self._amortize

    # ------------------------------------------------------------------
    # batch lifecycle
    # ------------------------------------------------------------------
    def _begin_next_batch(self) -> None:
        """If on a poll boundary, poll the flag; then claim and run the
        next batch. Between boundaries the flag is never observed."""
        grid = self.grid
        now = grid.sim.now
        if (
            self._is_persistent
            and grid.flag is not None
            and self._since_poll == 0
        ):
            value = grid.flag.device_read(now)
            if should_yield(self.sm.sm_id, value, grid.kernel.supports_spatial):
                # the boundary poll itself still costs one pinned read
                self._schedule_yield(now + self._poll_cost, finished_in_batch=0)
                return

        batch = grid.next_batch_size(self)
        if batch == 0:
            self._finish(now)
            return
        taken = grid.pool.take(batch)
        if taken == 0:
            self._finish(now)
            return
        self._batch_start = now
        self._batch_size = taken
        duration = self._batch_duration(taken)
        self._completion = grid.sim.schedule(
            duration,
            self._on_batch_complete,
            label=f"{grid.kernel.name}/ctx{self.ctx_id}/batch",
        )
        if self._is_persistent and grid.flag is not None:
            # a flag written before this batch started may bite mid-batch
            self.replan()

    def _on_batch_complete(self) -> None:
        self._completion = None
        batch = self._batch_size
        self.tasks_done += batch
        self.grid.pool.finish(batch)
        if self._is_persistent:
            obs = self._obs
            prof = self._prof
            if obs.enabled or prof.enabled:
                # charged at batch granularity so the uninstrumented hot
                # path stays O(batches), not O(tasks)
                polls = self._polls_in_batch(batch)
                if obs.enabled:
                    obs.tasks_pulled(batch)
                    obs.flag_polled(polls)
                if prof.enabled:
                    prof.on_batch(batch, polls)
            self._since_poll = (self._since_poll + batch) % self._amortize
        self._batch_size = 0
        self.grid.notify_progress()
        self._begin_next_batch()

    def _finish(self, now: float) -> None:
        if self.state is not CTAState.RUNNING:
            raise SchedulingError("context finished twice")
        self.state = CTAState.FINISHED
        self.ended_at = now
        self._teardown_events()
        self.grid.context_done(self)

    # ------------------------------------------------------------------
    # preemption
    # ------------------------------------------------------------------
    def replan(self) -> None:
        """Recompute this context's fate after a flag write.

        Scans the flag's (short) write history for the first poll
        boundary of the current batch at which the device-visible value
        demands a yield; schedules/cancels the yield event accordingly.
        """
        if self.state is not CTAState.RUNNING or not self._is_persistent:
            return
        grid = self.grid
        if grid.flag is None or self._batch_size == 0:
            return

        yield_m = self._first_yield_poll()
        if yield_m is None:
            # no mid-batch yield; restore the completion event if a
            # previously-planned yield was cancelled by a flag clear
            maybe_cancel(self._yield_event)
            self._yield_event = None
            if self._completion is None or self._completion.cancelled:
                tc = self._batch_start + self._batch_duration(self._batch_size)
                self._completion = grid.sim.schedule_at(
                    max(tc, grid.sim.now),
                    self._on_batch_complete,
                    label=f"{grid.kernel.name}/ctx{self.ctx_id}/batch",
                )
            return

        finished = min(self._poll_task_index(yield_m), self._batch_size)
        yield_at = self._poll_read_start(yield_m) + self._poll_cost
        maybe_cancel(self._completion)
        self._completion = None
        maybe_cancel(self._yield_event)
        self._yield_event = grid.sim.schedule_at(
            max(yield_at, grid.sim.now),
            lambda: self._do_yield(finished),
            label=f"{grid.kernel.name}/ctx{self.ctx_id}/yield",
        )

    def _first_yield_poll(self) -> Optional[int]:
        """Ordinal ``m`` of the first *mid-batch* poll that observes a
        yield-demanding flag value, or ``None``.

        The poll at the very start of the batch (task index 0, only when
        the batch begins on a boundary) already ran synchronously in
        ``_begin_next_batch``, so it is excluded. Walks the flag's
        (short) piecewise-constant write history, solving for the first
        poll ordinal in each demanding interval — O(history), not
        O(batch/L).
        """
        grid = self.grid
        n_polls = self._polls_in_batch(self._batch_size)
        if n_polls <= 0:
            return None
        # the m=0 poll is mid-batch unless it sits at task index 0
        m_lo = 1 if self._first_poll_index() == 0 else 0
        if m_lo >= n_polls:
            return None
        period = self._poll_cost + self._amortize * self._per_task
        history = grid.flag._history  # (visible_at, value), sorted
        spatial = grid.kernel.supports_spatial
        best: Optional[int] = None
        for visible_at, value in history:
            if not should_yield(self.sm.sm_id, value, spatial):
                continue
            # smallest m with poll_read_start(m) >= visible_at
            base = self._poll_read_start(0)
            if visible_at <= base + _EPS:
                m = 0
            else:
                m = math.ceil((visible_at - base) / period - _EPS)
            m = max(m, m_lo)
            if m >= n_polls:
                continue
            # the value actually observed at that poll must still demand
            # a yield (a later write may have cleared it)
            observed = grid.flag.device_read(self._poll_read_start(m) + _EPS)
            if not should_yield(self.sm.sm_id, observed, spatial):
                continue
            if best is None or m < best:
                best = m
        return best

    def _schedule_yield(self, at: float, finished_in_batch: int) -> None:
        self._yield_event = self.grid.sim.schedule_at(
            max(at, self.grid.sim.now),
            lambda: self._do_yield(finished_in_batch),
            label=f"{self.grid.kernel.name}/ctx{self.ctx_id}/yield",
        )

    def _do_yield(self, finished_in_batch: int) -> None:
        if self.state is not CTAState.RUNNING:
            return
        self._yield_event = None
        pool = self.grid.pool
        obs = self._obs
        prof = self._prof
        if obs.enabled or prof.enabled:
            # the polls performed up to (and including) the yielding poll
            polled = 1
            if self._batch_size:
                polled += self._polls_in_batch(
                    min(finished_in_batch, self._batch_size)
                )
            if obs.enabled:
                obs.flag_polled(polled)
                obs.tasks_pulled(finished_in_batch)
            if prof.enabled:
                prof.on_batch(finished_in_batch, polled)
        if self._batch_size:
            if finished_in_batch > self._batch_size:
                raise SimulationError("yield finished more tasks than batch")
            pool.finish(finished_in_batch)
            pool.give_back(self._batch_size - finished_in_batch)
            self.tasks_done += finished_in_batch
            self._batch_size = 0
        self.state = CTAState.YIELDED
        self.ended_at = self.grid.sim.now
        self._teardown_events()
        self.grid.context_yielded(self)

    # ------------------------------------------------------------------
    def _teardown_events(self) -> None:
        if self._started:
            self.grid.pool.worker_left()
            self._started = False
        maybe_cancel(self._completion)
        maybe_cancel(self._yield_event)
        self._completion = None
        self._yield_event = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CTAContext({self.grid.kernel.name}#{self.ctx_id}, "
            f"sm={self.sm.sm_id}, {self.state.value}, done={self.tasks_done})"
        )
