"""CTA execution contexts.

A :class:`CTAContext` is one resident CTA slot executing a grid's tasks.
Original kernels and FLEP persistent kernels run through the same context
machinery (see :mod:`repro.gpu.kernel`); the differences are:

========================  =================  ==========================
                          ORIGINAL           PERSISTENT (FLEP)
========================  =================  ==========================
task pull cost            0 (hardware)       ``task_pull_us`` (atomic)
flag poll                 never              every ``L`` tasks
preemption                impossible         at the next poll boundary
========================  =================  ==========================

To keep event counts low the context claims a *batch* of tasks and
schedules a single completion event. When the host writes the preemption
flag, the context re-plans: it computes the first poll boundary at which
the device-visible flag value demands a yield, finishes exactly the tasks
processed by then, returns the rest to the pool, and releases its SM.
This reproduces Figure 4's semantics exactly while staying
``O(contexts x preemption epochs)`` in events.

Performance note: the batch loop is the simulator's hottest path. All
per-batch constants (task time, poll cost, amortizing factor, event
labels) are frozen into plain attributes at context creation — kernel,
cost model and task multiplier never change over a context's lifetime —
and batch plans are memoized keyed on ``(batch, since_poll)``. The flag
fast path (:attr:`PinnedFlag._demanding`) lets ``replan`` skip the
yield-poll search entirely while no host write demands a yield.
"""

from __future__ import annotations

import enum
import math
from typing import Optional, TYPE_CHECKING

from ..errors import SchedulingError, SimulationError
from ..obs.profiler import NULL_PROFILER
from ..obs.recorder import NULL_OBS
from .events import Event, maybe_cancel
from .kernel import KernelMode
from .memory import should_yield

if TYPE_CHECKING:  # pragma: no cover
    from .grid import Grid
    from .sm import SM

_EPS = 1e-9


class CTAState(enum.Enum):
    """Lifecycle of one resident CTA slot."""

    RUNNING = "running"
    YIELDED = "yielded"      # quit due to a preemption flag
    FINISHED = "finished"    # pool exhausted


class CTAContext:
    """One resident CTA slot processing batches of tasks."""

    __slots__ = (
        "grid", "ctx_id", "sm", "state", "tasks_done", "started_at",
        "ended_at", "_obs", "_prof", "task_mult", "_is_persistent",
        "_task_time", "_per_task", "_poll_cost", "_amortize", "_spatial",
        "_batch_label", "_yield_label", "_plan_cache", "_batch_start",
        "_batch_size", "_completion", "_yield_event", "_started",
        "_since_poll",
    )

    def __init__(self, grid: "Grid", ctx_id: int, sm: "SM"):
        self.grid = grid
        self.ctx_id = ctx_id
        self.sm = sm
        self.state = CTAState.RUNNING
        self.tasks_done = 0
        self.started_at = grid.sim.now
        self.ended_at: Optional[float] = None
        # Instrumentation handles, cached as plain attributes: the batch
        # loop is the simulator's hottest path and must not pay property
        # getters per batch. Hubs/profilers are installed on the device
        # before launch, so context-creation-time capture is safe.
        device = grid.device
        self._obs = device.obs if device is not None else NULL_OBS
        self._prof = device.prof if device is not None else NULL_PROFILER
        # Per-batch constants, frozen once (kernel/cost model/multiplier
        # are immutable for the context's lifetime).
        kernel = grid.kernel
        persistent = kernel.mode is KernelMode.PERSISTENT
        self._is_persistent = persistent
        # per-context task-time multiplier (input irregularity)
        self.task_mult = kernel.task_model.sample_multiplier(grid.rng)
        self._task_time = kernel.task_model.mean_task_us * self.task_mult
        if persistent:
            self._per_task = self._task_time + grid.costs.task_pull_us
            self._poll_cost = grid.costs.pinned_poll_us
            self._amortize = kernel.amortize_l
        else:
            self._per_task = self._task_time
            self._poll_cost = 0.0
            self._amortize = 1
        self._spatial = kernel.supports_spatial
        self._batch_label = f"{kernel.name}/ctx{ctx_id}/batch"
        self._yield_label = f"{kernel.name}/ctx{ctx_id}/yield"
        #: memoized batch plans: (batch, since_poll) -> duration_us
        self._plan_cache = {}

        # current batch
        self._batch_start = 0.0
        self._batch_size = 0
        self._completion: Optional[Event] = None
        self._yield_event: Optional[Event] = None
        self._started = False
        #: tasks processed since the last flag poll, in [0, L). Polls
        #: happen exactly every L tasks *across* batch boundaries, so a
        #: sub-L tail batch does not cost an extra poll.
        self._since_poll = 0

    def start(self) -> None:
        """Begin execution. Called by the device *after* SM admission, so
        that resource accounting is consistent even if the context
        finishes instantly (empty pool)."""
        if self._started:
            raise SchedulingError(f"context {self!r} started twice")
        self._started = True
        self.grid.pool.worker_joined(self.grid)
        self._begin_next_batch()

    # ------------------------------------------------------------------
    # timing helpers
    # ------------------------------------------------------------------
    def _first_poll_index(self) -> int:
        """Task index within the current batch at which the first poll
        fires: 0 if the batch starts on a poll boundary, else the task
        that completes the current L-group."""
        L = self._amortize
        return (L - self._since_poll) % L

    def _polls_in_batch(self, batch: int) -> int:
        """Number of flag polls performed while processing ``batch``
        tasks, given the persistent offset."""
        if not self._is_persistent or batch <= 0:
            return 0
        first = self._first_poll_index()
        if first >= batch:
            return 0
        return 1 + (batch - 1 - first) // self._amortize

    def _batch_duration(self, batch: int) -> float:
        """Wall time of a ``batch``-task run from the current poll
        offset; memoized — contexts re-plan the same ``(batch,
        since_poll)`` pair many times over a kernel's lifetime."""
        key = (batch, self._since_poll)
        cached = self._plan_cache.get(key)
        if cached is None:
            cached = self._plan_cache[key] = (
                self._polls_in_batch(batch) * self._poll_cost
                + batch * self._per_task
            )
        return cached

    def _poll_read_start(self, m: int) -> float:
        """Time the m-th in-batch poll (m >= 0) begins reading the flag:
        all earlier polls plus all earlier tasks have completed."""
        j = self._first_poll_index() + m * self._amortize
        return self._batch_start + m * self._poll_cost + j * self._per_task

    def _poll_task_index(self, m: int) -> int:
        """Tasks of this batch completed when the m-th poll fires."""
        return self._first_poll_index() + m * self._amortize

    # ------------------------------------------------------------------
    # batch lifecycle
    # ------------------------------------------------------------------
    def _begin_next_batch(self) -> None:
        """If on a poll boundary, poll the flag; then claim and run the
        next batch. Between boundaries the flag is never observed."""
        grid = self.grid
        sim = grid.sim
        now = sim.clock._now
        if self._is_persistent and self._since_poll == 0:
            flag = grid.flag
            # _demanding empty => every visible value is 0 => no yield;
            # skip the read entirely (the poll itself is only *charged*
            # when it demands a yield or as part of a batch plan)
            if flag is not None and flag._demanding:
                # newest write already visible => it is what a read
                # observes; bisect only while the write is in flight
                last = flag._history[-1]
                value = last[1] if last[0] <= now else flag.device_read(now)
                if should_yield(self.sm.sm_id, value, self._spatial):
                    # the boundary poll itself still costs one pinned read
                    self._schedule_yield(
                        now + self._poll_cost, finished_in_batch=0
                    )
                    return

        pool = grid.pool
        remaining = pool._remaining
        if remaining <= 0:
            self._finish(now)
            return
        # Macro fast-forward: in steady state (flags steady, every pool
        # worker accounted for) the whole remaining batch chain is
        # precomputed and this context's claim is absorbed into the
        # cohort — see repro.gpu.macro. Non-persistent chains qualify
        # too: no polls, no flag response, same guided claims.
        if (
            sim.macro_events
            and grid._macro is None
            and not sim.use_reference_loop
            and grid.try_macro(self, now)
        ):
            return
        # plan lookup inlined from Grid.next_batch_size (memo-hit path)
        width = grid._parallel_width
        workers = pool._workers
        if workers > width:
            width = workers
        batch = grid._batch_plans.get((remaining, width))
        if batch is None:
            batch = grid.next_batch_size(self)
        # claim inlined from TaskPool.take: the planner clamps batch to
        # [1, remaining], so the claim never truncates or goes negative
        pool._remaining = remaining - batch
        pool._outstanding += batch
        self._batch_start = now
        self._batch_size = batch
        # duration inlined from _batch_duration (identical float-op
        # order, so replan's recomputation lands on the same bit pattern)
        per_task = self._per_task
        if self._is_persistent:
            L = self._amortize
            first = (L - self._since_poll) % L
            polls = 0 if first >= batch else 1 + (batch - 1 - first) // L
            duration = polls * self._poll_cost + batch * per_task
        else:
            duration = batch * per_task
        self._completion = sim.schedule_event(
            now + duration,
            self._on_batch_complete,
            self._batch_label,
        )
        if self._is_persistent:
            flag = grid.flag
            # a flag written before this batch started may bite
            # mid-batch. No demanding write ever — or the newest write a
            # visible clear — means replan would be a no-op (fresh
            # completion, no yield event), so skip the call.
            if flag is not None and flag._demanding:
                last = flag._history[-1]
                if last[1] != 0 or last[0] > now:
                    self.replan()

    def _on_batch_complete(self) -> None:
        self._completion = None
        batch = self._batch_size
        self.tasks_done += batch
        grid = self.grid
        # inlined from TaskPool.finish: this batch was claimed whole at
        # _begin_next_batch, so batch <= outstanding by construction
        pool = grid.pool
        pool._outstanding -= batch
        pool._done += batch
        if self._is_persistent:
            since = self._since_poll
            L = self._amortize
            obs = self._obs
            prof = self._prof
            if obs.enabled or prof.enabled:
                # charged at batch granularity so the instrumented hot
                # path stays O(batches), not O(tasks); polls inlined
                # from _polls_in_batch
                first = (L - since) % L
                polls = 0 if first >= batch else 1 + (batch - 1 - first) // L
                if obs.enabled:
                    obs.tasks_pulled(batch)
                    obs.flag_polled(polls)
                if prof.enabled:
                    prof.on_batch(batch, polls)
            self._since_poll = (since + batch) % L
        self._batch_size = 0
        grid.notify_progress()
        self._begin_next_batch()

    def _finish(self, now: float) -> None:
        if self.state is not CTAState.RUNNING:
            raise SchedulingError("context finished twice")
        self.state = CTAState.FINISHED
        self.ended_at = now
        self._teardown_events()
        self.grid.context_done(self)

    # ------------------------------------------------------------------
    # preemption
    # ------------------------------------------------------------------
    def replan(self) -> None:
        """Recompute this context's fate after a flag write.

        Scans the flag's (short) demanding-write index for the first
        poll boundary of the current batch at which the device-visible
        value demands a yield; schedules/cancels the yield event
        accordingly.
        """
        if self.state is not CTAState.RUNNING or not self._is_persistent:
            return
        grid = self.grid
        flag = grid.flag
        if flag is None or self._batch_size == 0:
            return

        if not flag._demanding:
            yield_m = None
        else:
            # Cleared-flag fast path: when the newest write is a clear
            # already visible at (or before) the batch start, every poll
            # of this batch observes 0 — _first_yield_poll would scan
            # the whole demanding index just to reject each candidate.
            last = flag._history[-1]
            if last[1] == 0 and last[0] <= self._batch_start:
                yield_m = None
            else:
                yield_m = self._first_yield_poll()
        if yield_m is None:
            # no mid-batch yield; restore the completion event if a
            # previously-planned yield was cancelled by a flag clear
            maybe_cancel(self._yield_event)
            self._yield_event = None
            if self._completion is None or self._completion.cancelled:
                tc = self._batch_start + self._batch_duration(self._batch_size)
                now = grid.sim.clock._now
                self._completion = grid.sim.schedule_event(
                    tc if tc > now else now,
                    self._on_batch_complete,
                    self._batch_label,
                )
            return

        finished = min(self._poll_task_index(yield_m), self._batch_size)
        yield_at = self._poll_read_start(yield_m) + self._poll_cost
        maybe_cancel(self._completion)
        self._completion = None
        maybe_cancel(self._yield_event)
        now = grid.sim.clock._now
        self._yield_event = grid.sim.schedule_event(
            yield_at if yield_at > now else now,
            lambda: self._do_yield(finished),
            self._yield_label,
        )

    def _first_yield_poll(self) -> Optional[int]:
        """Ordinal ``m`` of the first *mid-batch* poll that observes a
        yield-demanding flag value, or ``None``.

        The poll at the very start of the batch (task index 0, only when
        the batch begins on a boundary) already ran synchronously in
        ``_begin_next_batch``, so it is excluded. Walks the flag's
        (short) index of demanding writes, solving for the first poll
        ordinal in each demanding interval — O(demanding writes), not
        O(batch/L).
        """
        grid = self.grid
        n_polls = self._polls_in_batch(self._batch_size)
        if n_polls <= 0:
            return None
        # the m=0 poll is mid-batch unless it sits at task index 0
        m_lo = 1 if self._first_poll_index() == 0 else 0
        if m_lo >= n_polls:
            return None
        period = self._poll_cost + self._amortize * self._per_task
        flag = grid.flag
        spatial = self._spatial
        sm_id = self.sm.sm_id
        base = self._poll_read_start(0)
        best: Optional[int] = None
        checked: set = set()
        # only writes with value > 0 can demand a yield; zero writes
        # matter solely through the observed-value re-check below. Old
        # demanding writes all collapse onto the same candidate poll, so
        # each candidate ordinal is evaluated once.
        for visible_at, value in flag._demanding:
            if not should_yield(sm_id, value, spatial):
                continue
            # smallest m with poll_read_start(m) >= visible_at
            if visible_at <= base + _EPS:
                m = 0
            else:
                m = math.ceil((visible_at - base) / period - _EPS)
            if m < m_lo:
                m = m_lo
            if m >= n_polls or (best is not None and m >= best):
                continue
            if m in checked:
                continue
            checked.add(m)
            # the value actually observed at that poll must still demand
            # a yield (a later write may have cleared it)
            observed = flag.device_read(self._poll_read_start(m) + _EPS)
            if not should_yield(sm_id, observed, spatial):
                continue
            best = m
        return best

    def _schedule_yield(self, at: float, finished_in_batch: int) -> None:
        sim = self.grid.sim
        now = sim.clock._now
        self._yield_event = sim.schedule_event(
            at if at > now else now,
            lambda: self._do_yield(finished_in_batch),
            self._yield_label,
        )

    def _do_yield(self, finished_in_batch: int) -> None:
        if self.state is not CTAState.RUNNING:
            return
        self._yield_event = None
        pool = self.grid.pool
        obs = self._obs
        prof = self._prof
        if obs.enabled or prof.enabled:
            # the polls performed up to (and including) the yielding poll
            polled = 1
            if self._batch_size:
                polled += self._polls_in_batch(
                    min(finished_in_batch, self._batch_size)
                )
            if obs.enabled:
                obs.flag_polled(polled)
                obs.tasks_pulled(finished_in_batch)
            if prof.enabled:
                prof.on_batch(finished_in_batch, polled)
        if self._batch_size:
            if finished_in_batch > self._batch_size:
                raise SimulationError("yield finished more tasks than batch")
            pool.finish(finished_in_batch)
            pool.give_back(self._batch_size - finished_in_batch)
            self.tasks_done += finished_in_batch
            self._batch_size = 0
        self.state = CTAState.YIELDED
        self.ended_at = self.grid.sim.now
        self._teardown_events()
        self.grid.context_yielded(self)

    # ------------------------------------------------------------------
    def _teardown_events(self) -> None:
        if self._started:
            self.grid.pool.worker_left(self.grid)
            self._started = False
        maybe_cancel(self._completion)
        maybe_cancel(self._yield_event)
        self._completion = None
        self._yield_event = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CTAContext({self.grid.kernel.name}#{self.ctx_id}, "
            f"sm={self.sm.sm_id}, {self.state.value}, done={self.tasks_done})"
        )
