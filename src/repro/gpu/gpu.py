"""The simulated GPU: SMs + hardware dispatcher + memories.

The dispatcher reproduces the non-preemptive hardware semantics of §2.1:
grids enter a device-wide FIFO; the head grid's CTAs are dispatched to
SMs as resources free, and **later grids are blocked while the head grid
still has undispatched CTAs**. Once a grid is fully dispatched (e.g. a
small grid, or a FLEP persistent launch), the next grid's CTAs may fill
whatever SM slots remain — that is exactly the MPS leftover-resource
sharing the paper describes.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional

from ..errors import SchedulingError
from ..obs.profiler import NULL_PROFILER, SimProfiler
from ..obs.recorder import NULL_OBS, Observability
from .device import GPUDeviceSpec, tesla_k40
from .grid import Grid, GridState
from .kernel import KernelImage, LaunchConfig, TaskPool
from .memory import DeviceMemory, PinnedFlag
from .sim import Simulator
from .sm import SM, SMBank
from .trace import ScheduleHash, _maybe_collect_sched, _maybe_collect_timeline


class SimulatedGPU:
    """Device facade: owns the SMs, device memory and the grid FIFO."""

    def __init__(
        self,
        sim: Simulator,
        spec: Optional[GPUDeviceSpec] = None,
        seed: Optional[int] = None,
    ):
        self.sim = sim
        self.spec = spec if spec is not None else tesla_k40()
        #: flat array-of-int occupancy, one entry per SM — what the
        #: admission scan walks (repro.gpu.sm.SMBank)
        self.bank = SMBank(self.spec, self.spec.num_sms)
        self.sms: List[SM] = [
            SM(i, self.spec, self.bank) for i in range(self.spec.num_sms)
        ]
        self.memory = DeviceMemory(self.spec.device_memory_bytes)
        self.rng = random.Random(seed) if seed is not None else None
        self._queue: List[Grid] = []
        self._dispatching = False
        self._dispatch_again = False
        self.launch_count = 0
        self.completed_grids: List[Grid] = []
        #: optional Timeline recorder (repro.gpu.trace); auto-attached
        #: inside a collected_timelines() window (golden-trace tests)
        self.tracer = _maybe_collect_timeline()
        #: always-on O(1)-memory schedule digest (identity contract)
        self.sched = ScheduleHash()
        _maybe_collect_sched(self.sched)
        self._obs: Observability = NULL_OBS
        self._prof: SimProfiler = NULL_PROFILER

    @property
    def obs(self) -> Observability:
        """Observability recorder; assigning one propagates to the SMs."""
        return self._obs

    @obs.setter
    def obs(self, hub: Observability) -> None:
        self._obs = hub
        for sm in self.sms:
            sm.obs = hub

    @property
    def prof(self) -> SimProfiler:
        """Self-profiler; assigning one propagates to the SMs."""
        return self._prof

    @prof.setter
    def prof(self, prof: SimProfiler) -> None:
        self._prof = prof
        for sm in self.sms:
            sm.prof = prof

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def new_flag(self) -> PinnedFlag:
        """Allocate a preemption flag in pinned host memory."""
        return PinnedFlag(self.sim, self.spec.costs.preempt_signal_us)

    def launch(
        self,
        kernel: KernelImage,
        config: LaunchConfig,
        pool: Optional[TaskPool] = None,
        flag: Optional[PinnedFlag] = None,
        tag: Optional[dict] = None,
        on_complete: Optional[Callable[[Grid], None]] = None,
        on_preempted: Optional[Callable[[Grid], None]] = None,
        launch_overhead_us: Optional[float] = None,
    ) -> Grid:
        """Send a kernel-launch command; the grid reaches the hardware
        queue after the driver's launch overhead.

        ``launch_overhead_us`` overrides the default synchronous launch
        cost — kernel slicing uses the (much smaller) pipelined dispatch
        gap for back-to-back slices.
        """
        grid = Grid(
            self.sim,
            self.spec,
            kernel,
            config,
            pool=pool,
            flag=flag,
            rng=self.rng,
            tag=tag,
            on_complete=on_complete,
            on_preempted=on_preempted,
        )
        grid.device = self
        self.launch_count += 1
        if self._obs.enabled:
            self._obs.kernel_launched(kernel.name)
        overhead = (
            self.spec.costs.kernel_launch_us
            if launch_overhead_us is None
            else launch_overhead_us
        )
        self.sim.schedule(
            overhead,
            lambda: self._enqueue(grid),
            label=f"launch:{kernel.name}",
        )
        return grid

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    @property
    def is_idle(self) -> bool:
        return not self._queue and all(sm.idle for sm in self.sms)

    def active_grids(self) -> List[Grid]:
        return [g for g in self._queue if not g.is_terminal]

    def free_cta_slots(self) -> int:
        return sum(sm.free_cta_slots() for sm in self.sms)

    # ------------------------------------------------------------------
    # dispatcher
    # ------------------------------------------------------------------
    def _enqueue(self, grid: Grid) -> None:
        if grid.is_terminal:
            return
        self._queue.append(grid)
        if self._obs.enabled:
            self._obs.hw_queue_depth(len(self._queue))
        self._dispatch()

    def _pick_sm(self, grid: Grid) -> Optional[SM]:
        """Choose the SM with the most free CTA slots (ties: lowest id).

        This spreads persistent CTAs across all SMs — required for
        FLEP's launch-geometry guarantee — and naturally lands a
        preempting kernel on the SMs spatial preemption just freed.

        The CTA footprint was resolved once at grid construction, so
        the scan is pure integer compares over the bank's flat arrays —
        no SM objects touched until one wins.
        """
        threads, warps, regs, smem = grid._footprint
        bank = self.bank
        free_l = bank.free
        th_l, wp_l, rg_l, sh_l = bank.threads, bank.warps, bank.regs, bank.smem
        max_th = bank.max_threads - threads
        max_wp = bank.max_warps - warps
        max_rg = bank.max_regs - regs
        max_sh = bank.max_smem - smem
        max_ctas = bank.max_ctas
        best = -1
        best_free = 0
        for i in range(bank.n):
            free = free_l[i]
            if free <= best_free:
                # cannot beat the current best (or has no free slot)
                continue
            if (
                th_l[i] <= max_th
                and wp_l[i] <= max_wp
                and rg_l[i] <= max_rg
                and sh_l[i] <= max_sh
            ):
                best = i
                best_free = free
                if free == max_ctas:
                    # an empty SM cannot be beaten (ties keep lowest id)
                    break
        return None if best < 0 else self.sms[best]

    def _dispatch(self) -> None:
        if self._dispatching:
            self._dispatch_again = True
            return
        self._dispatching = True
        try:
            progressed = True
            queue = self._queue
            while progressed:
                progressed = False
                self._dispatch_again = False
                # walk the FIFO in place (it can be hundreds of grids
                # deep under load, and the head usually blocks at once —
                # snapshotting it per dispatch would dominate retires)
                i = 0
                while i < len(queue):
                    grid = queue[i]
                    if grid._terminal:
                        del queue[i]
                        continue
                    fp = grid._footprint
                    while grid.wants_dispatch():
                        sm = self._pick_sm(grid)
                        if sm is None:
                            break
                        ctx = grid.place_context(sm)
                        sm.admit_fp(ctx, *fp)
                        if self.tracer is not None:
                            self.tracer.context_placed(ctx, grid)
                        ctx.start()
                        progressed = True
                        if grid._terminal:
                            break
                    if grid.blocks_queue:
                        # head-of-line blocking: later grids must wait
                        break
                    # a placement may have re-entered _dispatch and
                    # mutated the queue; never walk past its new length
                    i += 1
                if self._dispatch_again:
                    progressed = True
        finally:
            self._dispatching = False

    # -- grid callbacks --------------------------------------------------
    def on_context_released(self, ctx=None) -> None:
        if ctx is not None:
            now = self.sim.now
            self.sched.fold(
                ctx.grid.kernel.name, ctx.sm.sm_id, ctx.started_at, now
            )
            if self.tracer is not None:
                self.tracer.context_retired(ctx, now)
        self._dispatch()

    def on_grid_terminal(self, grid: Grid) -> None:
        if grid in self._queue:
            self._queue.remove(grid)
            if self._obs.enabled:
                self._obs.hw_queue_depth(len(self._queue))
        if grid.state is GridState.COMPLETE:
            self.completed_grids.append(grid)
        self._dispatch()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        busy = sum(0 if sm.idle else 1 for sm in self.sms)
        return (
            f"SimulatedGPU({self.spec.name}, queue={len(self._queue)}, "
            f"busy_sms={busy}/{self.spec.num_sms})"
        )
