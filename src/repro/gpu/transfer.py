"""PCIe DMA engine.

Models the two copy engines of a Tesla-class GPU: one host-to-device and
one device-to-host channel, each serving transfers in FIFO order at the
cost model's latency + bandwidth. Transfers and kernel execution overlap
freely (different engines), as on real hardware.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Callable, Deque, Optional, Tuple

from .device import CostModel
from .sim import Simulator


class Direction(enum.Enum):
    """Copy direction (one engine each way)."""

    H2D = "h2d"
    D2H = "d2h"


class _Channel:
    """One copy engine: FIFO, non-preemptive."""

    def __init__(self, sim: Simulator, costs: CostModel, name: str):
        self._sim = sim
        self._costs = costs
        self._name = name
        self._queue: Deque[Tuple[int, Callable[[], None]]] = deque()
        self._busy = False

    def submit(self, nbytes: int, on_done: Callable[[], None]) -> None:
        self._queue.append((nbytes, on_done))
        if not self._busy:
            self._start_next()

    def _start_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        nbytes, on_done = self._queue.popleft()
        duration = self._costs.transfer_time_us(nbytes)

        def finish():
            on_done()
            self._start_next()

        self._sim.schedule(duration, finish, label=f"dma:{self._name}")


class DMAEngine:
    """Both copy engines of the device."""

    def __init__(self, sim: Simulator, costs: CostModel):
        self._h2d = _Channel(sim, costs, "h2d")
        self._d2h = _Channel(sim, costs, "d2h")

    def copy(
        self,
        direction: Direction,
        nbytes: int,
        on_done: Optional[Callable[[], None]] = None,
    ) -> None:
        """Submit a copy; ``on_done`` fires when it completes."""
        channel = self._h2d if direction is Direction.H2D else self._d2h
        channel.submit(nbytes, on_done or (lambda: None))
