"""Multi-Process Service (MPS) front-end.

Real MPS funnels the CUDA contexts of multiple host processes into one
device context so their kernels can share the GPU (§2.1). Here the
:class:`MPSServer` hands each connecting process its own
:class:`~repro.gpu.stream.Stream`; the device's FIFO dispatcher then
provides exactly the paper's baseline behaviour — concurrent execution
only when the head kernel leaves resources unused, head-of-line blocking
otherwise.
"""

from __future__ import annotations

from typing import Dict

from ..errors import SimulationError
from .gpu import SimulatedGPU
from .stream import Stream
from .transfer import DMAEngine


class MPSServer:
    """One MPS daemon serving a single GPU."""

    def __init__(self, gpu: SimulatedGPU):
        self.gpu = gpu
        self.dma = DMAEngine(gpu.sim, gpu.spec.costs)
        self._clients: Dict[str, Stream] = {}

    def connect(self, process_name: str) -> Stream:
        """A host process connects; MPS assigns it a distinct stream."""
        if process_name in self._clients:
            raise SimulationError(
                f"process {process_name!r} already connected to MPS"
            )
        stream = Stream(self.gpu, dma=self.dma, name=f"mps:{process_name}")
        self._clients[process_name] = stream
        return stream

    def disconnect(self, process_name: str) -> None:
        if process_name not in self._clients:
            raise SimulationError(f"process {process_name!r} not connected")
        del self._clients[process_name]

    @property
    def num_clients(self) -> int:
        return len(self._clients)

    def stream_of(self, process_name: str) -> Stream:
        return self._clients[process_name]
