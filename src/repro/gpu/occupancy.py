"""CUDA occupancy arithmetic for the simulated device.

Implements the occupancy-calculator rules for compute capability 3.5
(the K40): a CTA's register and shared-memory footprints are rounded up
to allocation granularities, and the per-SM active-CTA limit is the
minimum over the CTA-slot, thread, warp, register and shared-memory
constraints. §4.1 of the paper relies on this to size persistent-thread
launches (``num_SMs * max_CTAs_per_SM``) so that *every* launched CTA is
guaranteed active.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from ..errors import OccupancyError
from .device import GPUDeviceSpec
from .kernel import ResourceUsage


def ceil_to(value: int, granularity: int) -> int:
    """Round ``value`` up to a multiple of ``granularity``."""
    if granularity <= 0:
        raise OccupancyError(f"granularity must be positive, got {granularity}")
    if value <= 0:
        return 0
    return int(math.ceil(value / granularity)) * granularity


#: (warps, regs, smem) per CTA, cached per (usage, spec) — both are
#: frozen/hashable, and a workload uses a handful of distinct pairs.
_FOOTPRINTS: Dict[Tuple[ResourceUsage, GPUDeviceSpec], Tuple[int, int, int]] = {}


def cta_footprint(
    usage: ResourceUsage, spec: GPUDeviceSpec
) -> Tuple[int, int, int]:
    """Rounded ``(warps, regs, smem)`` one CTA of ``usage`` charges on an
    SM of ``spec``. Memoized: admit *and* release of every CTA ask for
    the same few footprints — and :func:`occupancy_report` derives its
    per-CTA numbers from the same entry, so reported occupancy can never
    drift from the admission screen's arithmetic."""
    key = (usage, spec)
    fp = _FOOTPRINTS.get(key)
    if fp is None:
        warps = -(-usage.threads_per_cta // spec.warp_size)
        regs = (
            ceil_to(
                usage.regs_per_thread * spec.warp_size,
                spec.register_alloc_unit,
            )
            * warps
        )
        smem = ceil_to(usage.shared_mem_per_cta, spec.shared_mem_alloc_unit)
        fp = _FOOTPRINTS[key] = (warps, regs, smem)
    return fp


@dataclass(frozen=True)
class OccupancyReport:
    """Breakdown of the per-SM active-CTA limit by constraining resource."""

    ctas_per_sm: int
    limit_slots: int
    limit_threads: int
    limit_warps: int
    limit_registers: int
    limit_shared_mem: int
    warps_per_cta: int
    regs_per_cta: int
    shared_per_cta: int

    @property
    def limiter(self) -> str:
        """Name of the binding constraint (useful in diagnostics)."""
        limits = {
            "cta_slots": self.limit_slots,
            "threads": self.limit_threads,
            "warps": self.limit_warps,
            "registers": self.limit_registers,
            "shared_mem": self.limit_shared_mem,
        }
        return min(limits, key=lambda k: limits[k])

    @property
    def occupancy_fraction(self) -> float:
        """Achieved fraction of the SM's thread capacity."""
        return self.ctas_per_sm * self.warps_per_cta / max(
            1, self.limit_warps * self.warps_per_cta
        )


#: report cache keyed on (spec, usage) — both frozen dataclasses. Every
#: Grid construction recomputes its occupancy; a workload launches many
#: grids over a handful of distinct (spec, usage) pairs.
_REPORTS: Dict[Tuple[GPUDeviceSpec, ResourceUsage], OccupancyReport] = {}


def occupancy_report(spec: GPUDeviceSpec, usage: ResourceUsage) -> OccupancyReport:
    """Compute how many CTAs of ``usage`` one SM of ``spec`` can host."""
    key = (spec, usage)
    cached = _REPORTS.get(key)
    if cached is not None:
        return cached
    report = _occupancy_report_uncached(spec, usage)
    _REPORTS[key] = report
    return report


def _occupancy_report_uncached(
    spec: GPUDeviceSpec, usage: ResourceUsage
) -> OccupancyReport:
    if usage.threads_per_cta > spec.max_threads_per_cta:
        raise OccupancyError(
            f"CTA of {usage.threads_per_cta} threads exceeds device limit "
            f"{spec.max_threads_per_cta}"
        )
    if usage.regs_per_thread > spec.max_registers_per_thread:
        raise OccupancyError(
            f"{usage.regs_per_thread} registers/thread exceeds device limit "
            f"{spec.max_registers_per_thread}"
        )
    if usage.shared_mem_per_cta > spec.shared_mem_per_sm:
        raise OccupancyError(
            f"CTA shared memory {usage.shared_mem_per_cta} exceeds the SM's "
            f"{spec.shared_mem_per_sm} bytes"
        )

    # the one shared footprint entry the SM admission screen also uses
    warps_per_cta, regs_per_cta, shared_per_cta = cta_footprint(usage, spec)

    limit_slots = spec.max_ctas_per_sm
    limit_threads = spec.max_threads_per_sm // usage.threads_per_cta
    limit_warps = spec.max_warps_per_sm // warps_per_cta
    limit_regs = (
        spec.registers_per_sm // regs_per_cta if regs_per_cta else limit_slots
    )
    limit_smem = (
        spec.shared_mem_per_sm // shared_per_cta if shared_per_cta else limit_slots
    )

    ctas = min(limit_slots, limit_threads, limit_warps, limit_regs, limit_smem)
    if ctas <= 0:
        raise OccupancyError(
            f"kernel CTA ({usage}) cannot be hosted by one SM of {spec.name}"
        )
    return OccupancyReport(
        ctas_per_sm=ctas,
        limit_slots=limit_slots,
        limit_threads=limit_threads,
        limit_warps=limit_warps,
        limit_registers=limit_regs,
        limit_shared_mem=limit_smem,
        warps_per_cta=warps_per_cta,
        regs_per_cta=regs_per_cta,
        shared_per_cta=shared_per_cta,
    )


def max_ctas_per_sm(spec: GPUDeviceSpec, usage: ResourceUsage) -> int:
    """Shorthand for ``occupancy_report(...).ctas_per_sm``."""
    return occupancy_report(spec, usage).ctas_per_sm


def active_slots(spec: GPUDeviceSpec, usage: ResourceUsage) -> int:
    """Device-wide guaranteed-active CTA count for a persistent launch:
    ``num_SMs * max_CTAs_per_SM`` (§4.1)."""
    return spec.num_sms * max_ctas_per_sm(spec, usage)


def sms_needed(spec: GPUDeviceSpec, usage: ResourceUsage, ctas: int) -> int:
    """How many SMs are required to host ``ctas`` CTAs simultaneously.

    This is what FLEP's spatial preemption computes for the waiting
    kernel: preempt *just enough* SMs (§2.2, §6.4).
    """
    if ctas <= 0:
        return 0
    per_sm = max_ctas_per_sm(spec, usage)
    return min(spec.num_sms, math.ceil(ctas / per_sm))
