"""Event primitives for the discrete-event engine.

Events are cancellable: a scheduled :class:`Event` keeps a ``cancelled``
flag instead of being removed from the heap (lazy deletion). This is what
lets persistent-thread CTAs "fast-forward" — they schedule one far-future
completion event and, when a preemption flag arrives, that event is
cancelled and re-planned at the next poll boundary (see DESIGN.md §4).
"""

from __future__ import annotations

from typing import Any, Callable, Optional


class Event:
    """A single scheduled callback.

    Ordering is ``(time, priority, seq)`` so that simultaneous events fire
    deterministically: lower ``priority`` first, then insertion order.
    """

    __slots__ = (
        "time", "priority", "seq", "callback", "label", "cancelled", "_q"
    )

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[[], Any],
        label: str = "",
        priority: int = 0,
    ):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.label = label
        self.cancelled = False
        #: owning engine while the event sits in its queue (duck-typed:
        #: anything with a ``_dead`` counter); cleared when popped so a
        #: late ``cancel()`` cannot skew the live-event count
        self._q = None

    def cancel(self) -> None:
        """Mark the event dead; the engine skips it when popped."""
        if not self.cancelled:
            self.cancelled = True
            q = self._q
            if q is not None:
                q._dead += 1

    def sort_key(self):
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        # Direct field comparison: this runs O(log n) times per heap
        # operation on the engine's hottest path, so no tuple allocation.
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.3f}, {self.label!r}, {state})"


class EventHandle:
    """Opaque handle returned by ``Simulator.schedule``.

    Holding a handle lets a component cancel or inspect its own event
    without reaching into the engine's heap.
    """

    __slots__ = ("_event",)

    def __init__(self, event: Event):
        self._event = event

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def label(self) -> str:
        return self._event.label

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> None:
        self._event.cancel()


def maybe_cancel(handle: Optional[EventHandle]) -> None:
    """Cancel ``handle`` if it is not ``None`` (common idiom)."""
    if handle is not None:
        handle.cancel()
