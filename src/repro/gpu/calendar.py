"""Bucketed (calendar) event queue for high-fanout scenarios.

The engine's default queue is one binary heap: O(log n) per operation
with an excellent constant. Serving-style workloads, however, hold
thousands of far-future arrivals next to a small working set of
near-term completions, and every push/pop sifts through the whole heap.
A calendar queue shards events into fixed-width time buckets so the
sift only ever sees one bucket's worth of events.

This implementation is a two-level structure chosen for *determinism*
first: buckets are keyed by ``floor(time / bucket_us)`` and stored as
small binary heaps of the engine's ``(time, priority, seq, Event)``
entries — the exact same ordering as the flat heap — and a lazy
min-heap of bucket keys finds the head bucket. Equal times always land
in the same bucket, so the global pop order is bit-identical to the
flat heap's — asserted by the schedule-identity tests. Non-finite times
(the persistent-thread "far future" sentinel) go to an overflow heap
that is only consulted when every finite bucket has drained.

It deliberately implements only what :class:`~repro.gpu.sim.Simulator`
needs behind its ``schedule_at`` API: ``push``, ``peek``, ``pop`` and
``len``. Cancellation stays lazy (the engine drops cancelled heads), so
buckets never need random removal.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Optional

from ..errors import SimulationError
from .events import Event

#: Default bucket width (µs): wide enough that a batch completion and
#: its successor usually share a bucket, narrow enough that a serving
#: sweep's arrival horizon spreads over many buckets.
DEFAULT_BUCKET_US = 64.0


class CalendarQueue:
    """A deterministic bucketed priority queue of engine heap entries."""

    __slots__ = ("_width", "_buckets", "_keys", "_overflow", "_len")

    def __init__(self, bucket_us: float = DEFAULT_BUCKET_US):
        if not (bucket_us > 0.0) or not math.isfinite(bucket_us):
            raise SimulationError(
                f"bucket_us must be positive and finite, got {bucket_us}"
            )
        self._width = float(bucket_us)
        #: bucket key -> heap of (time, priority, seq, Event) entries
        self._buckets: Dict[int, List[tuple]] = {}
        self._keys: List[int] = []     # lazy min-heap of bucket keys
        self._overflow: List[tuple] = []  # non-finite event times
        self._len = 0

    def __len__(self) -> int:
        return self._len

    def push(self, time: float, priority: int, seq: int, ev: Event) -> None:
        """Insert an entry, keyed by its time bucket."""
        entry = (time, priority, seq, ev)
        if math.isfinite(time):
            key = int(time // self._width)
            bucket = self._buckets.get(key)
            if bucket is None:
                self._buckets[key] = [entry]
                heapq.heappush(self._keys, key)
            else:
                heapq.heappush(bucket, entry)
        else:
            heapq.heappush(self._overflow, entry)
        self._len += 1

    def _head(self) -> Optional[List[tuple]]:
        """The bucket holding the global minimum entry, or ``None``.

        Pops stale keys (whose bucket has drained) on the way; a key can
        also be a duplicate if its bucket was re-created, which the same
        laziness absorbs.
        """
        keys = self._keys
        buckets = self._buckets
        while keys:
            bucket = buckets.get(keys[0])
            if bucket:
                return bucket
            heapq.heappop(keys)
        return self._overflow if self._overflow else None

    def peek(self) -> Optional[Event]:
        """The minimum event without removing it (cancelled included)."""
        bucket = self._head()
        return bucket[0][3] if bucket else None

    def pop(self) -> Event:
        """Remove and return the minimum event."""
        bucket = self._head()
        if bucket is None:
            raise SimulationError("pop from an empty CalendarQueue")
        entry = heapq.heappop(bucket)
        if not bucket and bucket is not self._overflow:
            # drop the drained bucket now; its key goes stale and the
            # next _head() walk discards it
            del self._buckets[int(entry[0] // self._width)]
        self._len -= 1
        return entry[3]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CalendarQueue(len={self._len}, buckets={len(self._buckets)}, "
            f"width={self._width}us)"
        )
