"""Exception hierarchy for the FLEP reproduction.

All exceptions raised by :mod:`repro` derive from :class:`ReproError`, so
callers can catch the library's failures with a single ``except`` clause
while still distinguishing subsystem-specific conditions.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class SimulationError(ReproError):
    """The discrete-event simulator was driven into an invalid state."""


class SchedulingError(SimulationError):
    """A scheduling decision violated an invariant (e.g. double dispatch)."""


class ResourceError(SimulationError):
    """An SM or device resource budget was exceeded or under-released."""


class MemoryError_(SimulationError):
    """Device/pinned memory allocation failure (distinct from builtins)."""


class CompilationError(ReproError):
    """The FLEP source-to-source compiler rejected the input program."""


class ParseError(CompilationError):
    """Syntax error in the CUDA-C subset accepted by the frontend."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class TransformError(CompilationError):
    """A kernel/host transform could not be applied to the parsed program."""


class OccupancyError(CompilationError):
    """A launch configuration cannot be hosted by the target device at all."""


class RuntimeEngineError(ReproError):
    """The FLEP online runtime engine hit an inconsistent state."""


class ModelError(RuntimeEngineError):
    """A performance model could not be trained or evaluated."""


class WorkloadError(ReproError):
    """A benchmark/workload definition or calibration is invalid."""


class ExperimentError(ReproError):
    """An experiment harness was configured inconsistently."""


class ServingError(ReproError):
    """The multi-tenant serving layer was misconfigured or misused."""


class FleetError(ReproError):
    """The multi-GPU fleet layer (dispatcher, routing, work stealing)
    was misconfigured or driven into an invalid state."""


class ObservabilityError(ReproError):
    """Invalid metric/span registration, observation, or export."""


class ValidationError(ReproError):
    """The conformance subsystem (:mod:`repro.validate`) found a problem."""


class InvariantViolation(ValidationError):
    """An online invariant monitor observed an illegal system state.

    Carries machine-readable ``context`` (monitor name, simulated time,
    offending values) so the fuzzer can report and shrink failures.
    """

    def __init__(self, message: str, **context):
        self.context = dict(context)
        if context:
            details = ", ".join(f"{k}={v}" for k, v in context.items())
            message = f"{message} [{details}]"
        super().__init__(message)


class OracleMismatch(ValidationError):
    """A differential oracle found two executions that should agree but
    do not (e.g. never-preempted temporal FLEP vs the persistent-thread
    baseline)."""
