"""FLEP: Enabling Flexible and Efficient Preemption on GPUs (ASPLOS'17)
— a full reproduction on a discrete-event GPU simulator.

Subpackages
-----------
``repro.gpu``
    The substrate: a K40-class simulated GPU (SM occupancy, the
    non-preemptive hardware CTA FIFO, MPS streams, pinned-memory flag
    polling, launch overheads, PCIe DMA).
``repro.compiler``
    The offline phase: a CUDA-C-subset source-to-source compiler
    implementing the Figure-4 kernel transforms and the Figure-5 host
    transform, plus PTX resource scanning, occupancy analysis, and
    amortizing-factor tuning.
``repro.runtime``
    The online phase: invocation interception, ridge-regression duration
    models, (T_e, T_w, T_r) tracking, preemption-overhead estimation.
``repro.core``
    The system tied together: the :class:`FlepSystem` facade and the
    scheduling policies (HPF, FFS, plus FIFO/reordering controls).
``repro.baselines``
    What the paper compares against: plain MPS co-runs, kernel slicing,
    kernel reordering.
``repro.workloads``
    The eight benchmarks calibrated to Table 1.
``repro.experiments``
    One module per evaluation table/figure.

Quickstart
----------
>>> from repro import FlepSystem
>>> system = FlepSystem(policy="hpf")
>>> system.submit_at(0.0, "batch", "NN", "large", priority=0)
>>> system.submit_at(10.0, "query", "SPMV", "small", priority=1)
>>> result = system.run()
>>> result.all_finished
True
"""

from .core.flep import CoRunResult, FlepSystem
from .core.policies import (
    EDFPolicy,
    FFSPolicy,
    FIFOPolicy,
    HPFPolicy,
    ReorderPolicy,
)
from .errors import (
    CompilationError,
    ExperimentError,
    ParseError,
    ReproError,
    RuntimeEngineError,
    ServingError,
    SimulationError,
    TransformError,
    WorkloadError,
)
from .gpu.device import GPUDeviceSpec, small_test_gpu, tesla_k40
from .runtime.engine import RuntimeConfig
from .workloads.benchmarks import BenchmarkSuite, standard_suite

__version__ = "1.0.0"

__all__ = [
    "CoRunResult",
    "FlepSystem",
    "EDFPolicy",
    "FFSPolicy",
    "FIFOPolicy",
    "HPFPolicy",
    "ReorderPolicy",
    "CompilationError",
    "ExperimentError",
    "ParseError",
    "ReproError",
    "RuntimeEngineError",
    "ServingError",
    "SimulationError",
    "TransformError",
    "WorkloadError",
    "GPUDeviceSpec",
    "small_test_gpu",
    "tesla_k40",
    "RuntimeConfig",
    "BenchmarkSuite",
    "standard_suite",
    "__version__",
]
