"""Clock-stamped span tracer with Chrome/Perfetto trace-event export.

The tracer records what the :class:`~repro.runtime.journal.DecisionJournal`
and the :class:`~repro.gpu.trace.Timeline` each capture half of — nested,
timed spans of the whole system: one outer span per kernel invocation
(arrival to completion) with execute / preempt-drain / wait / resume
segments inside it, plus instant markers (preemption requests) and
counter tracks (queue depth, resident CTAs).

Export is the Chrome ``trace_event`` JSON format, so a whole
multi-program run opens directly in ``chrome://tracing`` or
https://ui.perfetto.dev:

* spans become ``"ph": "X"`` *complete* events (robust to out-of-order
  emission — the viewer nests by containment);
* instants become ``"ph": "i"``, counters ``"ph": "C"``;
* process/thread names are declared with ``"ph": "M"`` metadata events.

Simulated time is microseconds, which is exactly the ``ts``/``dur`` unit
the trace-event spec uses — timestamps are exported unscaled.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import ObservabilityError


@dataclass
class Span:
    """One open or closed span on a (process, track) lane."""

    name: str
    cat: str
    process: str
    track: int
    start_us: float
    end_us: Optional[float] = None
    args: Dict[str, object] = field(default_factory=dict)

    @property
    def open(self) -> bool:
        return self.end_us is None

    @property
    def duration_us(self) -> float:
        if self.end_us is None:
            raise ObservabilityError(f"span {self.name!r} is still open")
        return self.end_us - self.start_us


@dataclass(frozen=True)
class InstantEvent:
    name: str
    cat: str
    process: str
    track: int
    at_us: float
    args: Tuple[Tuple[str, object], ...] = ()


@dataclass(frozen=True)
class CounterSample:
    name: str
    process: str
    at_us: float
    values: Tuple[Tuple[str, float], ...]


class SpanTracer:
    """Recorder of nested spans, instants and counter samples.

    ``clock`` supplies the current (simulated) time in microseconds; the
    tracer never advances time itself. ``track`` is a stable integer lane
    within a process — the engine uses the invocation id, so every
    invocation renders as its own named row.
    """

    def __init__(self, clock: Callable[[], float]):
        self._clock = clock
        self.spans: List[Span] = []
        self.instants: List[InstantEvent] = []
        self.counters: List[CounterSample] = []
        self._track_names: Dict[Tuple[str, int], str] = {}

    # -- recording ---------------------------------------------------------
    @property
    def now(self) -> float:
        return self._clock()

    def name_track(self, process: str, track: int, name: str) -> None:
        """Give a (process, track) lane a human-readable name."""
        self._track_names[(process, track)] = name

    def begin(
        self,
        name: str,
        cat: str = "",
        process: str = "flep",
        track: int = 0,
        **args,
    ) -> Span:
        span = Span(
            name=name,
            cat=cat,
            process=process,
            track=track,
            start_us=self.now,
            args=dict(args),
        )
        self.spans.append(span)
        return span

    def end(self, span: Span, **args) -> Span:
        if span.end_us is not None:
            raise ObservabilityError(f"span {span.name!r} ended twice")
        now = self.now
        if now < span.start_us:
            raise ObservabilityError(
                f"span {span.name!r} would end before it started"
            )
        span.end_us = now
        if args:
            span.args.update(args)
        return span

    def complete(
        self,
        name: str,
        start_us: float,
        end_us: float,
        cat: str = "",
        process: str = "flep",
        track: int = 0,
        **args,
    ) -> Span:
        """Record an already-closed span (retrospective instrumentation)."""
        if end_us < start_us:
            raise ObservabilityError(
                f"span {name!r} ends before it starts"
            )
        span = Span(name, cat, process, track, start_us, end_us, dict(args))
        self.spans.append(span)
        return span

    def instant(
        self,
        name: str,
        cat: str = "",
        process: str = "flep",
        track: int = 0,
        **args,
    ) -> None:
        self.instants.append(
            InstantEvent(
                name, cat, process, track, self.now,
                tuple(sorted(args.items())),
            )
        )

    def counter(self, name: str, process: str = "flep", **values) -> None:
        """Sample a counter track (renders as a stacked area chart)."""
        self.counter_at(name, self.now, process=process, **values)

    def counter_at(
        self, name: str, at_us: float, process: str = "flep", **values
    ) -> None:
        """Record a counter sample at an explicit (past) timestamp —
        retrospective instrumentation, e.g. the self-profiler exporting
        its decimated timelines after a run."""
        if not values:
            raise ObservabilityError("counter sample needs at least one value")
        self.counters.append(
            CounterSample(
                name,
                process,
                at_us,
                tuple(sorted((k, float(v)) for k, v in values.items())),
            )
        )

    # -- queries -----------------------------------------------------------
    def open_spans(self) -> List[Span]:
        return [s for s in self.spans if s.open]

    def close_open(self, at_us: Optional[float] = None) -> int:
        """Close every still-open span (end of run); returns how many."""
        at = self.now if at_us is None else at_us
        n = 0
        for span in self.spans:
            if span.open:
                span.end_us = max(at, span.start_us)
                span.args.setdefault("truncated", True)
                n += 1
        return n

    def spans_named(self, name: str) -> List[Span]:
        return [s for s in self.spans if s.name == name]

    def spans_in(self, outer: Span) -> List[Span]:
        """Spans fully contained in ``outer`` on the same lane (the
        viewer's nesting relation)."""
        if outer.end_us is None:
            raise ObservabilityError("containment needs a closed span")
        return [
            s
            for s in self.spans
            if s is not outer
            and s.process == outer.process
            and s.track == outer.track
            and not s.open
            and s.start_us >= outer.start_us - 1e-9
            and s.end_us <= outer.end_us + 1e-9
        ]

    # -- export ------------------------------------------------------------
    def chrome_trace(self) -> Dict[str, object]:
        """The run as a Chrome ``trace_event`` JSON object."""
        pids: Dict[str, int] = {}

        def pid_of(process: str) -> int:
            if process not in pids:
                pids[process] = len(pids) + 1
            return pids[process]

        events: List[Dict[str, object]] = []
        for span in self.spans:
            end = span.end_us if span.end_us is not None else span.start_us
            ev: Dict[str, object] = {
                "name": span.name,
                "ph": "X",
                "ts": span.start_us,
                "dur": end - span.start_us,
                "pid": pid_of(span.process),
                "tid": span.track,
            }
            if span.cat:
                ev["cat"] = span.cat
            if span.args or span.open:
                ev["args"] = dict(span.args)
                if span.open:
                    ev["args"]["truncated"] = True
            events.append(ev)
        for inst in self.instants:
            ev = {
                "name": inst.name,
                "ph": "i",
                "s": "t",  # thread-scoped instant
                "ts": inst.at_us,
                "pid": pid_of(inst.process),
                "tid": inst.track,
            }
            if inst.cat:
                ev["cat"] = inst.cat
            if inst.args:
                ev["args"] = dict(inst.args)
            events.append(ev)
        for sample in self.counters:
            events.append(
                {
                    "name": sample.name,
                    "ph": "C",
                    "ts": sample.at_us,
                    "pid": pid_of(sample.process),
                    "tid": 0,
                    "args": dict(sample.values),
                }
            )
        metadata: List[Dict[str, object]] = []
        for process, pid in sorted(pids.items(), key=lambda kv: kv[1]):
            metadata.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": process},
                }
            )
        for (process, track), label in sorted(self._track_names.items()):
            if process not in pids:
                continue
            metadata.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pids[process],
                    "tid": track,
                    "args": {"name": label},
                }
            )
        events.sort(key=lambda e: (e.get("ts", 0.0), e.get("pid", 0)))
        return {
            "traceEvents": metadata + events,
            "displayTimeUnit": "ms",
            "otherData": {"producer": "repro.obs.SpanTracer", "time_unit": "us"},
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.chrome_trace(), indent=indent)

    def write_chrome_trace(self, path: str, indent: Optional[int] = None) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json(indent=indent))

    def __len__(self) -> int:
        return len(self.spans) + len(self.instants) + len(self.counters)
