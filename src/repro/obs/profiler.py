"""Low-overhead self-profiler for the discrete-event hot path.

Where :mod:`repro.obs.recorder` answers "what did the *simulated system*
do?", this module answers "how fast is the *simulator itself*?" — the
instrument every performance optimisation of the event core is measured
with (see ROADMAP's speed-overhaul item and ``flep bench``).

A :class:`SimProfiler` hangs off the same guard pattern as the
observability hub: hot sites (the simulator event loop, SM admission,
the CTA batch loop, the runtime's preemption mechanics) check a single
``prof.enabled`` attribute and call typed hooks only when a live
profiler is installed. Uninstrumented runs share the module-level
:data:`NULL_PROFILER`, whose hooks are all no-ops, so the uninstalled
cost is one attribute check per site (asserted ~0% end to end by
``benchmarks/test_obs_overhead.py``).

Unlike the metrics registry, the profiler's counters are plain ints and
dicts — no label-key validation, no Prometheus families — so the
*installed* cost stays a couple of dict operations per event (<5% of a
co-run, also asserted by the overhead bench). What it records:

* events fired, by bounded-cardinality label class, via the simulator's
  own :class:`~repro.gpu.sim.EventLoopStats` (one shared counter — the
  ``max_events`` exhaustion diagnostics and the profiler never
  double-count);
* event-queue depth high-water mark plus a decimated depth timeline;
* per-SM occupancy samples and drain-stall spans (preemption request to
  fully yielded), exportable next to the span tracer's Chrome tracks;
* task-pull / flag-poll counts from the persistent-kernel hot loop;
* preemption-latency histograms per mechanism (temporal / spatial);
* wall time and simulated time, hence events/sec and simulated-seconds
  per wall-second — the two headline metrics of ``BENCH_*.json``.

Quick start::

    from repro.core.flep import FlepSystem
    from repro.obs.profiler import SimProfiler

    prof = SimProfiler()
    system = FlepSystem(policy="hpf", profiler=prof)
    with prof:                      # wall-clock window
        system.submit_at(0.0, "batch", "NN", "large", priority=0)
        system.submit_at(200.0, "rt", "SPMV", "small", priority=1)
        system.run()
    print(prof.format_summary())

A profiler can also be installed process-globally (the way ``flep run
--json`` aggregates an ``engine`` block across every simulator an
experiment builds)::

    with profiled() as prof:
        EXPERIMENTS["fig8"].run()
    print(prof.engine_block())
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import ObservabilityError

#: Fixed preemption-latency buckets (µs): FLEP drains span tens of µs
#: (trivial inputs) to tens of ms (Table 1's worst cases).
LATENCY_US_BUCKETS: Tuple[float, ...] = (
    10.0, 50.0, 100.0, 500.0, 1_000.0, 5_000.0,
    10_000.0, 50_000.0, 100_000.0, 500_000.0,
)


class LatencyStat:
    """A tiny fixed-bucket histogram (no labels, no registry)."""

    __slots__ = ("bucket_counts", "count", "sum", "min", "max")

    def __init__(self):
        self.bucket_counts = [0] * (len(LATENCY_US_BUCKETS) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = 0.0

    def observe(self, value_us: float) -> None:
        """Record one latency sample (µs)."""
        idx = len(LATENCY_US_BUCKETS)
        for i, bound in enumerate(LATENCY_US_BUCKETS):
            if value_us <= bound:
                idx = i
                break
        self.bucket_counts[idx] += 1
        self.count += 1
        self.sum += value_us
        if value_us < self.min:
            self.min = value_us
        if value_us > self.max:
            self.max = value_us

    @property
    def mean(self) -> float:
        """Mean of the recorded samples (0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, object]:
        """Plain-data snapshot (buckets are upper bounds, +Inf last)."""
        return {
            "buckets_us": list(LATENCY_US_BUCKETS),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "sum_us": self.sum,
            "mean_us": self.mean,
            "min_us": self.min if self.count else 0.0,
            "max_us": self.max,
        }


class SimProfiler:
    """Hot-path profiler: one instance aggregates any number of runs.

    Attach it to a system (``FlepSystem(profiler=prof)``) or install it
    process-globally (:func:`install_global_profiler` /
    :func:`profiled`); every simulator built while it is installed
    registers itself via :meth:`attach`. Wall time accumulates between
    :meth:`start` and :meth:`stop` (or across ``with prof:`` blocks).
    """

    #: Hot paths check this before calling any hook.
    enabled = True

    def __init__(self, sample_every: int = 64, max_samples: int = 20_000):
        if sample_every <= 0:
            raise ObservabilityError("sample_every must be positive")
        self.sample_every = sample_every
        self.max_samples = max_samples
        #: (sim, processed/scheduled/cancelled baselines, now at attach)
        self._sims: List[Tuple[object, int, int, int, float]] = []
        self._clock: Callable[[], float] = lambda: 0.0
        # counters (plain ints/dicts: the installed hot cost). Events are
        # counted by *raw label* — one dict op on the hot path — and only
        # collapsed to bounded kind classes when read (events_by_kind).
        self._by_label: Dict[str, int] = {}
        self._until_sample = sample_every
        self.task_pulls = 0
        self.flag_polls = 0
        self.cta_admissions = 0
        #: batches retired inside macro-event fast-forward (no per-batch
        #: event fired for them); surfaced as the ``macro-batch`` kind
        self.batches_collapsed = 0
        self.preempt_requested: Dict[str, int] = {}
        self.preempt_completed: Dict[str, int] = {}
        # timelines (bounded; ``dropped_samples`` counts the overflow
        # so truncation is never silent)
        self.queue_samples: List[Tuple[float, int]] = []
        self.sm_samples: List[Tuple[float, int, int]] = []
        self.drain_stalls: List[Tuple[str, int, float, float]] = []
        self.dropped_samples = 0
        self._open_stalls: Dict[Tuple[str, int], float] = {}
        # latency histograms per preemption mechanism
        self.latency: Dict[str, LatencyStat] = {
            "temporal": LatencyStat(),
            "spatial": LatencyStat(),
        }
        # wall-clock accounting
        self._wall_s = 0.0
        self._wall_started: Optional[float] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def attach(self, sim) -> None:
        """Register a simulator; its event counters are read *shared*
        (no copy) from ``sim.stats``, baselined at attach time."""
        st = sim.stats
        self._sims.append(
            (sim, st.processed, st.scheduled, st.cancelled, sim.now)
        )
        self._clock = lambda: sim.now

    def start(self) -> None:
        """Open a wall-clock measurement window (idempotent)."""
        if self._wall_started is None:
            self._wall_started = time.perf_counter()

    def stop(self) -> None:
        """Close the wall-clock window, accumulating elapsed time."""
        if self._wall_started is not None:
            self._wall_s += time.perf_counter() - self._wall_started
            self._wall_started = None

    def __enter__(self) -> "SimProfiler":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # hot hooks (call sites guard with ``prof.enabled``)
    # ------------------------------------------------------------------
    def on_event(self, label: str, queue_depth: int) -> None:
        """One simulator event fired; ``queue_depth`` is the heap length
        after the pop. Totals come from the shared ``EventLoopStats`` —
        this hook only classifies, and is deliberately minimal: one dict
        increment plus a decimation countdown."""
        by_label = self._by_label
        by_label[label] = by_label.get(label, 0) + 1
        self._until_sample -= 1
        if self._until_sample <= 0:
            self._until_sample = self.sample_every
            if len(self.queue_samples) < self.max_samples:
                self.queue_samples.append((self._clock(), queue_depth))
            else:
                self.dropped_samples += 1

    def on_sm_admit(self, sm_id: int, resident: int) -> None:
        """A CTA context was admitted onto ``sm_id``."""
        self.cta_admissions += 1
        self._sm_sample(sm_id, resident)

    def on_sm_release(self, sm_id: int, resident: int) -> None:
        """A CTA context left ``sm_id``."""
        self._sm_sample(sm_id, resident)

    def on_tasks_pulled(self, n: int) -> None:
        """``n`` tasks were pulled from a persistent task pool."""
        self.task_pulls += n

    def on_flag_polls(self, n: int) -> None:
        """``n`` pinned-memory preemption-flag polls were performed."""
        self.flag_polls += n

    def on_batch(self, tasks: int, polls: int) -> None:
        """One persistent-kernel batch retired: ``tasks`` pulled,
        ``polls`` flag polls. The combined form the CTA batch loop calls
        (one hook invocation per batch instead of two)."""
        self.task_pulls += tasks
        self.flag_polls += polls

    def on_macro_collapse(self, batches: int) -> None:
        """``batches`` per-batch events were collapsed into a macro-event
        fast-forward flush (:mod:`repro.gpu.macro`). Their task/poll
        totals were already charged through :meth:`on_batch`; this only
        records how much per-batch eventing was avoided."""
        self.batches_collapsed += batches

    def on_preempt_requested(self, kind: str, inv_id: int) -> None:
        """A preemption was requested; opens the drain-stall span."""
        self.preempt_requested[kind] = self.preempt_requested.get(kind, 0) + 1
        self._open_stalls[(kind, inv_id)] = self._clock()

    def on_drained(self, inv_id: int) -> None:
        """A temporally preempted invocation is fully off the GPU."""
        self._close_stall("temporal", inv_id)

    def on_spatial_reclaimed(self, inv_id: int) -> None:
        """A spatial victim got its yielded SMs back (guest finished)."""
        self._close_stall("spatial", inv_id)

    def _close_stall(self, kind: str, inv_id: int) -> None:
        started = self._open_stalls.pop((kind, inv_id), None)
        if started is None:
            return
        now = self._clock()
        self.preempt_completed[kind] = self.preempt_completed.get(kind, 0) + 1
        self.latency[kind].observe(now - started)
        if len(self.drain_stalls) < self.max_samples:
            self.drain_stalls.append((kind, inv_id, started, now))
        else:
            self.dropped_samples += 1

    def _sm_sample(self, sm_id: int, resident: int) -> None:
        if len(self.sm_samples) < self.max_samples:
            self.sm_samples.append((self._clock(), sm_id, resident))
        else:
            self.dropped_samples += 1

    # ------------------------------------------------------------------
    # derived readings
    # ------------------------------------------------------------------
    @property
    def events_by_kind(self) -> Dict[str, int]:
        """Per-label counts collapsed to bounded kind classes (computed
        at read time; the hot path only bumps raw-label counters)."""
        out: Dict[str, int] = {}
        for label, n in self._by_label.items():
            kind = _event_kind(label)
            out[kind] = out.get(kind, 0) + n
        if self.batches_collapsed:
            out["macro-batch"] = (
                out.get("macro-batch", 0) + self.batches_collapsed
            )
        return out

    @property
    def events_total(self) -> int:
        """Events executed across every attached simulator, read from
        the engines' own counters (single source of truth)."""
        return sum(s.stats.processed - base for s, base, _, _, _ in self._sims)

    @property
    def events_scheduled(self) -> int:
        """Events pushed onto the heaps across attached simulators."""
        return sum(s.stats.scheduled - base for s, _, base, _, _ in self._sims)

    @property
    def peak_queue_depth(self) -> int:
        """Highest heap length seen by any attached simulator."""
        return max(
            (s.stats.peak_pending for s, _, _, _, _ in self._sims), default=0
        )

    @property
    def sim_elapsed_us(self) -> float:
        """Simulated µs advanced across attached simulators."""
        return sum(s.now - at for s, _, _, _, at in self._sims)

    @property
    def wall_s(self) -> float:
        """Accumulated wall seconds (a still-open window counts)."""
        open_s = (
            time.perf_counter() - self._wall_started
            if self._wall_started is not None
            else 0.0
        )
        return self._wall_s + open_s

    @property
    def events_per_sec(self) -> float:
        """Events/sec over the measured wall window (0 if unmeasured)."""
        wall = self.wall_s
        return self.events_total / wall if wall > 0 else 0.0

    @property
    def sim_us_per_wall_s(self) -> float:
        """Simulated µs advanced per wall second (0 if unmeasured)."""
        wall = self.wall_s
        return self.sim_elapsed_us / wall if wall > 0 else 0.0

    @property
    def num_sims(self) -> int:
        """How many simulators registered with this profiler."""
        return len(self._sims)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def engine_block(self) -> Dict[str, object]:
        """The compact ``engine`` dict that ``flep run --json`` and
        ``flep serve --json`` attach to every report."""
        return {
            "events": self.events_total,
            "events_per_sec": self.events_per_sec,
            "wall_s": self.wall_s,
            "peak_queue_depth": self.peak_queue_depth,
            "sim_us": self.sim_elapsed_us,
            "sim_us_per_wall_s": self.sim_us_per_wall_s,
            "sims": self.num_sims,
        }

    def snapshot(self) -> Dict[str, object]:
        """Full plain-data snapshot (the bench report's raw section)."""
        return {
            **self.engine_block(),
            "events_scheduled": self.events_scheduled,
            "events_by_kind": dict(
                sorted(self.events_by_kind.items())
            ),
            "task_pulls": self.task_pulls,
            "flag_polls": self.flag_polls,
            "cta_admissions": self.cta_admissions,
            "batches_collapsed": self.batches_collapsed,
            "preempt_requested": dict(sorted(self.preempt_requested.items())),
            "preempt_completed": dict(sorted(self.preempt_completed.items())),
            "preempt_latency_us": {
                kind: stat.as_dict()
                for kind, stat in sorted(self.latency.items())
                if stat.count
            },
            "queue_samples": len(self.queue_samples),
            "sm_samples": len(self.sm_samples),
            "drain_stalls": len(self.drain_stalls),
            "dropped_samples": self.dropped_samples,
        }

    def format_summary(self) -> str:
        """Human-readable profiler report (``flep stats --profile``)."""
        lines = [
            "== simulator self-profile ==",
            f"events          {self.events_total}"
            f" ({self.events_per_sec:,.0f}/s over {self.wall_s:.3f}s wall,"
            f" {self.num_sims} sim(s))",
            f"simulated time  {self.sim_elapsed_us / 1e6:.6f}s"
            f" ({self.sim_us_per_wall_s / 1e6:.3f} sim-s per wall-s)",
            f"queue depth     peak {self.peak_queue_depth}"
            f" (scheduled {self.events_scheduled})",
            f"hot loop        task_pulls={self.task_pulls}"
            f" flag_polls={self.flag_polls}"
            f" cta_admissions={self.cta_admissions}"
            f" batches_collapsed={self.batches_collapsed}",
        ]
        for kind in sorted(self.events_by_kind):
            lines.append(
                f"  event[{kind:<12s}] {self.events_by_kind[kind]}"
            )
        for kind, stat in sorted(self.latency.items()):
            if not stat.count:
                continue
            req = self.preempt_requested.get(kind, 0)
            lines.append(
                f"preempt[{kind}] requested={req} completed={stat.count} "
                f"latency mean={stat.mean:.0f}us "
                f"min={stat.min:.0f}us max={stat.max:.0f}us"
            )
        if self.dropped_samples:
            lines.append(
                f"(timelines truncated: {self.dropped_samples} samples "
                f"dropped beyond max_samples={self.max_samples})"
            )
        return "\n".join(lines)

    def export_to_tracer(self, tracer) -> int:
        """Render the profiler's timelines next to the span tracer's
        tracks (a ``profiler`` process in the Chrome trace): the event
        queue depth as a counter track, per-SM occupancy as counter
        tracks, drain stalls as retrospective spans. Returns the number
        of trace records added."""
        n = 0
        for at_us, depth in self.queue_samples:
            tracer.counter_at(
                "event_queue_depth", at_us, process="profiler", depth=depth
            )
            n += 1
        for at_us, sm_id, resident in self.sm_samples:
            tracer.counter_at(
                f"sm{sm_id}_resident", at_us, process="profiler",
                ctas=resident,
            )
            n += 1
        for kind, inv_id, start_us, end_us in self.drain_stalls:
            tracer.complete(
                f"{kind}_stall inv#{inv_id}",
                start_us,
                end_us,
                cat="profiler",
                process="profiler",
                track=0,
                latency_us=end_us - start_us,
            )
            n += 1
        return n


def _event_kind(label: str) -> str:
    """Collapse an event label to a bounded-cardinality class:
    ``"NN__flep/ctx3/batch" -> "batch"``, ``"launch:NN" -> "launch"``."""
    if not label:
        return "unlabelled"
    return label.rsplit("/", 1)[-1].split(":", 1)[0]


class NullSimProfiler(SimProfiler):
    """The default profiler: every hook is a no-op.

    Mirrors :class:`~repro.obs.recorder.NullObservability` — uninstalled
    hot paths pay one ``prof.enabled`` attribute check per site.
    """

    enabled = False

    def attach(self, sim):  # noqa: D102 - no-op hooks
        pass

    def on_event(self, label, queue_depth):
        pass

    def on_sm_admit(self, sm_id, resident):
        pass

    def on_sm_release(self, sm_id, resident):
        pass

    def on_tasks_pulled(self, n):
        pass

    def on_flag_polls(self, n):
        pass

    def on_batch(self, tasks, polls):
        pass

    def on_macro_collapse(self, batches):
        pass

    def on_preempt_requested(self, kind, inv_id):
        pass

    def on_drained(self, inv_id):
        pass

    def on_spatial_reclaimed(self, inv_id):
        pass

    def start(self):
        pass

    def stop(self):
        pass


#: Shared no-op profiler used as the default everywhere.
NULL_PROFILER = NullSimProfiler()

# ---------------------------------------------------------------------------
# process-global profiler (how `flep run/serve/bench` profile whole runs)
# ---------------------------------------------------------------------------
_GLOBAL_PROFILER: Optional[SimProfiler] = None


def install_global_profiler(prof: SimProfiler) -> SimProfiler:
    """Make ``prof`` the default profiler for new systems."""
    global _GLOBAL_PROFILER
    _GLOBAL_PROFILER = prof
    return prof


def uninstall_global_profiler() -> None:
    """Remove the process-global profiler (new systems go back to null)."""
    global _GLOBAL_PROFILER
    _GLOBAL_PROFILER = None


def get_global_profiler() -> Optional[SimProfiler]:
    """The currently installed process-global profiler, if any."""
    return _GLOBAL_PROFILER


@contextmanager
def profiled(prof: Optional[SimProfiler] = None):
    """Install a profiler globally (and run its wall clock) for the
    duration::

        with profiled() as prof:
            EXPERIMENTS["fig8"].run()
        print(prof.format_summary())
    """
    prof = prof if prof is not None else SimProfiler()
    install_global_profiler(prof)
    prof.start()
    try:
        yield prof
    finally:
        prof.stop()
        uninstall_global_profiler()
