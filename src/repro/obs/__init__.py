"""Unified observability layer: metrics registry, span tracer, exporters.

See DESIGN.md's "Observability" section for the metric catalog and the
span model. Quick start::

    from repro import FlepSystem
    from repro.obs import Observability

    system = FlepSystem(policy="hpf", observability=True)
    system.submit_at(0.0, "batch", "NN", "large", priority=0)
    system.submit_at(10.0, "rt", "SPMV", "small", priority=1)
    system.run()
    print(system.obs.metrics.format_summary())
    system.obs.tracer.write_chrome_trace("trace.json")   # chrome://tracing
"""

from .metrics import (
    Counter,
    DEFAULT_US_BUCKETS,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    parse_prometheus,
)
from .recorder import (
    NULL_OBS,
    NullObservability,
    Observability,
    get_global,
    install_global,
    observed,
    uninstall_global,
)
from .tracer import CounterSample, InstantEvent, Span, SpanTracer

__all__ = [
    "Counter",
    "CounterSample",
    "DEFAULT_US_BUCKETS",
    "Gauge",
    "Histogram",
    "InstantEvent",
    "MetricsError",
    "MetricsRegistry",
    "NULL_OBS",
    "NullObservability",
    "Observability",
    "Span",
    "SpanTracer",
    "get_global",
    "install_global",
    "observed",
    "parse_prometheus",
    "uninstall_global",
]
