"""Unified observability layer: metrics registry, span tracer, exporters.

See DESIGN.md's "Observability" section for the metric catalog and the
span model. Quick start::

    from repro import FlepSystem
    from repro.obs import Observability

    system = FlepSystem(policy="hpf", observability=True)
    system.submit_at(0.0, "batch", "NN", "large", priority=0)
    system.submit_at(10.0, "rt", "SPMV", "small", priority=1)
    system.run()
    print(system.obs.metrics.format_summary())
    system.obs.tracer.write_chrome_trace("trace.json")   # chrome://tracing
"""

from .bench import (
    BENCH_SCHEMA,
    BUDGETS,
    BenchReport,
    BenchScenario,
    CompareResult,
    SCENARIOS,
    compare_reports,
    default_bench_filename,
    load_bench_report,
    run_bench,
)
from .metrics import (
    Counter,
    DEFAULT_US_BUCKETS,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    parse_prometheus,
)
from .profiler import (
    LatencyStat,
    NULL_PROFILER,
    NullSimProfiler,
    SimProfiler,
    get_global_profiler,
    install_global_profiler,
    profiled,
    uninstall_global_profiler,
)
from .recorder import (
    NULL_OBS,
    NullObservability,
    Observability,
    get_global,
    install_global,
    observed,
    uninstall_global,
)
from .tracer import CounterSample, InstantEvent, Span, SpanTracer

__all__ = [
    "BENCH_SCHEMA",
    "BUDGETS",
    "BenchReport",
    "BenchScenario",
    "CompareResult",
    "Counter",
    "CounterSample",
    "DEFAULT_US_BUCKETS",
    "Gauge",
    "Histogram",
    "InstantEvent",
    "LatencyStat",
    "MetricsError",
    "MetricsRegistry",
    "NULL_OBS",
    "NULL_PROFILER",
    "NullObservability",
    "NullSimProfiler",
    "Observability",
    "SCENARIOS",
    "SimProfiler",
    "Span",
    "SpanTracer",
    "compare_reports",
    "default_bench_filename",
    "get_global",
    "get_global_profiler",
    "install_global",
    "install_global_profiler",
    "load_bench_report",
    "observed",
    "parse_prometheus",
    "profiled",
    "run_bench",
    "uninstall_global",
    "uninstall_global_profiler",
]
