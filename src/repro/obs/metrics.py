"""Metrics primitives: counters, gauges, fixed-bucket histograms.

One :class:`MetricsRegistry` per observed system holds every metric
family the runtime and simulator emit (see the catalog registered by
:class:`~repro.obs.recorder.Observability`). Families support a small,
Prometheus-compatible label model — labels are keyword arguments at
observation time, and each distinct label combination is one time
series. Export paths:

* :meth:`MetricsRegistry.as_dict` / :meth:`MetricsRegistry.to_json` —
  machine-readable snapshots for scripts;
* :meth:`MetricsRegistry.render_prometheus` — the Prometheus text
  exposition format (verified round-trippable through
  :func:`parse_prometheus`);
* :meth:`MetricsRegistry.format_summary` — the human-readable table
  ``flep stats`` prints.

The module is dependency-free and never touches simulator state: values
flow in only through the instrumentation hooks.
"""

from __future__ import annotations

import json
import math
import re
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import ObservabilityError

#: Backwards-friendly alias — every metrics failure is an
#: :class:`~repro.errors.ObservabilityError`.
MetricsError = ObservabilityError


_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets (microseconds) sized for preemption-scale
#: latencies: FLEP drains are tens to thousands of µs.
DEFAULT_US_BUCKETS: Tuple[float, ...] = (
    10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1_000.0, 2_500.0, 5_000.0, 10_000.0, 25_000.0,
)


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise MetricsError(f"invalid metric name {name!r}")
    return name


def _label_key(
    label_names: Tuple[str, ...], labels: Dict[str, str]
) -> Tuple[str, ...]:
    if set(labels) != set(label_names):
        raise MetricsError(
            f"expected labels {label_names}, got {tuple(sorted(labels))}"
        )
    return tuple(str(labels[n]) for n in label_names)


class MetricFamily:
    """Base class: a named metric with fixed label names."""

    kind = "untyped"

    def __init__(self, name: str, help: str, label_names: Sequence[str] = ()):
        self.name = _check_name(name)
        self.help = help
        for ln in label_names:
            if not _LABEL_RE.match(ln):
                raise MetricsError(f"invalid label name {ln!r}")
        self.label_names: Tuple[str, ...] = tuple(label_names)

    # subclasses fill these ------------------------------------------------
    def samples(self) -> List[Tuple[str, Dict[str, str], float]]:
        """Flat list of ``(sample_name, labels, value)`` for export."""
        raise NotImplementedError

    def as_dict(self) -> Dict[str, object]:
        raise NotImplementedError

    def _labels_of(self, key: Tuple[str, ...]) -> Dict[str, str]:
        return dict(zip(self.label_names, key))


class Counter(MetricFamily):
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self, name, help, label_names=()):
        super().__init__(name, help, label_names)
        self._values: Dict[Tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise MetricsError(f"counter {self.name} cannot decrease")
        key = _label_key(self.label_names, labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        return self._values.get(_label_key(self.label_names, labels), 0.0)

    @property
    def total(self) -> float:
        return sum(self._values.values())

    def samples(self):
        return [
            (self.name, self._labels_of(k), v)
            for k, v in sorted(self._values.items())
        ]

    def as_dict(self):
        return {
            "kind": self.kind,
            "help": self.help,
            "values": [
                {"labels": self._labels_of(k), "value": v}
                for k, v in sorted(self._values.items())
            ],
        }


class Gauge(MetricFamily):
    """A value that can go up and down (queue depth, residency)."""

    kind = "gauge"

    def __init__(self, name, help, label_names=()):
        super().__init__(name, help, label_names)
        self._values: Dict[Tuple[str, ...], float] = {}

    def set(self, value: float, **labels) -> None:
        self._values[_label_key(self.label_names, labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = _label_key(self.label_names, labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        return self._values.get(_label_key(self.label_names, labels), 0.0)

    def samples(self):
        return [
            (self.name, self._labels_of(k), v)
            for k, v in sorted(self._values.items())
        ]

    def as_dict(self):
        return {
            "kind": self.kind,
            "help": self.help,
            "values": [
                {"labels": self._labels_of(k), "value": v}
                for k, v in sorted(self._values.items())
            ],
        }


class _HistogramSeries:
    __slots__ = ("bucket_counts", "sum", "count")

    def __init__(self, n_buckets: int):
        self.bucket_counts = [0] * n_buckets  # per-bucket (non-cumulative)
        self.sum = 0.0
        self.count = 0


class Histogram(MetricFamily):
    """Fixed-bucket histogram (upper bounds; +Inf bucket is implicit)."""

    kind = "histogram"

    def __init__(
        self,
        name,
        help,
        label_names=(),
        buckets: Optional[Sequence[float]] = None,
    ):
        super().__init__(name, help, label_names)
        bounds = tuple(buckets if buckets is not None else DEFAULT_US_BUCKETS)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise MetricsError(
                f"histogram {name}: buckets must be sorted and distinct"
            )
        if any(math.isinf(b) for b in bounds):
            raise MetricsError(
                f"histogram {name}: the +Inf bucket is implicit"
            )
        self.buckets: Tuple[float, ...] = bounds
        self._series: Dict[Tuple[str, ...], _HistogramSeries] = {}

    def observe(self, value: float, **labels) -> None:
        key = _label_key(self.label_names, labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries(
                len(self.buckets) + 1
            )
        idx = len(self.buckets)  # +Inf by default
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                idx = i
                break
        series.bucket_counts[idx] += 1
        series.sum += value
        series.count += 1

    # -- queries -----------------------------------------------------------
    def count(self, **labels) -> int:
        s = self._series.get(_label_key(self.label_names, labels))
        return s.count if s else 0

    def sum(self, **labels) -> float:
        s = self._series.get(_label_key(self.label_names, labels))
        return s.sum if s else 0.0

    def mean(self, **labels) -> float:
        s = self._series.get(_label_key(self.label_names, labels))
        if not s or s.count == 0:
            return 0.0
        return s.sum / s.count

    def quantile(self, q: float, **labels) -> float:
        """Bucket-resolution quantile estimate (upper bound of the bucket
        containing the q-th observation; last finite bound for +Inf)."""
        if not 0.0 <= q <= 1.0:
            raise MetricsError(f"quantile {q} out of [0, 1]")
        s = self._series.get(_label_key(self.label_names, labels))
        if not s or s.count == 0:
            return 0.0
        rank = q * s.count
        cum = 0
        for i, n in enumerate(s.bucket_counts):
            cum += n
            if cum >= rank and n:
                return (
                    self.buckets[i]
                    if i < len(self.buckets)
                    else self.buckets[-1]
                )
        return self.buckets[-1]

    def samples(self):
        out = []
        for key, s in sorted(self._series.items()):
            labels = self._labels_of(key)
            cum = 0
            for bound, n in zip(self.buckets, s.bucket_counts):
                cum += n
                le = {"le": _format_bound(bound)}
                out.append((f"{self.name}_bucket", {**labels, **le}, float(cum)))
            out.append(
                (f"{self.name}_bucket", {**labels, "le": "+Inf"}, float(s.count))
            )
            out.append((f"{self.name}_sum", dict(labels), s.sum))
            out.append((f"{self.name}_count", dict(labels), float(s.count)))
        return out

    def as_dict(self):
        return {
            "kind": self.kind,
            "help": self.help,
            "buckets": list(self.buckets),
            "values": [
                {
                    "labels": self._labels_of(k),
                    "bucket_counts": list(s.bucket_counts),
                    "sum": s.sum,
                    "count": s.count,
                }
                for k, s in sorted(self._series.items())
            ],
        }


def _format_bound(bound: float) -> str:
    """Prometheus renders integral bounds without a trailing .0."""
    if bound == int(bound):
        return str(int(bound))
    return repr(bound)


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


class MetricsRegistry:
    """Get-or-create home of every metric family."""

    def __init__(self):
        self._families: Dict[str, MetricFamily] = {}

    # -- registration ------------------------------------------------------
    def _get_or_create(self, cls, name, help, label_names, **kwargs):
        existing = self._families.get(name)
        if existing is not None:
            if type(existing) is not cls or existing.label_names != tuple(
                label_names
            ):
                raise MetricsError(
                    f"metric {name!r} re-registered with a different "
                    f"type/labels"
                )
            return existing
        family = cls(name, help, label_names, **kwargs)
        self._families[name] = family
        return family

    def counter(self, name, help="", label_names=()) -> Counter:
        return self._get_or_create(Counter, name, help, label_names)

    def gauge(self, name, help="", label_names=()) -> Gauge:
        return self._get_or_create(Gauge, name, help, label_names)

    def histogram(
        self, name, help="", label_names=(), buckets=None
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, label_names, buckets=buckets
        )

    # -- access ------------------------------------------------------------
    def get(self, name: str) -> MetricFamily:
        if name not in self._families:
            raise MetricsError(f"unknown metric {name!r}")
        return self._families[name]

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def __iter__(self) -> Iterable[MetricFamily]:
        return iter(self._families.values())

    def families(self) -> List[MetricFamily]:
        return list(self._families.values())

    # -- export ------------------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        return {
            name: fam.as_dict()
            for name, fam in sorted(self._families.items())
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (0.0.4)."""
        lines: List[str] = []
        for name in sorted(self._families):
            fam = self._families[name]
            if fam.help:
                lines.append(f"# HELP {name} {fam.help}")
            lines.append(f"# TYPE {name} {fam.kind}")
            for sample_name, labels, value in fam.samples():
                if labels:
                    rendered = ",".join(
                        f'{k}="{_escape_label_value(v)}"'
                        for k, v in labels.items()
                    )
                    lines.append(f"{sample_name}{{{rendered}}} {value:g}")
                else:
                    lines.append(f"{sample_name} {value:g}")
        return "\n".join(lines) + "\n"

    def format_summary(self) -> str:
        """Human-readable snapshot, one block per family."""
        lines: List[str] = []
        for name in sorted(self._families):
            fam = self._families[name]
            if isinstance(fam, Histogram):
                if not fam._series:
                    lines.append(f"{name} (histogram): no observations")
                    continue
                for key, series in sorted(fam._series.items()):
                    suffix = _labels_suffix(fam._labels_of(key))
                    mean = series.sum / series.count if series.count else 0.0
                    labels = fam._labels_of(key)
                    lines.append(
                        f"{name}{suffix} (histogram): count={series.count} "
                        f"mean={mean:.1f} "
                        f"p50<={fam.quantile(0.5, **labels):g} "
                        f"p95<={fam.quantile(0.95, **labels):g} "
                        f"sum={series.sum:.1f}"
                    )
            else:
                samples = fam.samples()
                if not samples:
                    lines.append(f"{name} ({fam.kind}): 0")
                    continue
                for sample_name, labels, value in samples:
                    suffix = _labels_suffix(labels)
                    shown = f"{value:.6g}" if value != int(value) else f"{int(value)}"
                    lines.append(f"{sample_name}{suffix} ({fam.kind}): {shown}")
        return "\n".join(lines)

    def reset(self) -> None:
        """Drop every recorded value but keep the registered catalog."""
        for fam in self._families.values():
            if isinstance(fam, Histogram):
                fam._series.clear()
            else:
                fam._values.clear()


def _labels_suffix(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in labels.items()) + "}"


# ---------------------------------------------------------------------------
# Prometheus text-format parser (round-trip verification + tooling)
# ---------------------------------------------------------------------------
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$"
)
_LABEL_PAIR_RE = re.compile(
    r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
)


def parse_prometheus(
    text: str,
) -> Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float]:
    """Parse Prometheus text format into ``{(name, labels): value}``.

    ``labels`` is a sorted tuple of ``(key, value)`` pairs. Raises
    :class:`MetricsError` on malformed lines, so it doubles as a format
    validator in tests (the round-trip acceptance check).
    """
    out: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise MetricsError(f"unparseable sample on line {lineno}: {line!r}")
        labels: List[Tuple[str, str]] = []
        raw = m.group("labels")
        if raw:
            consumed = 0
            for pm in _LABEL_PAIR_RE.finditer(raw):
                value = (
                    pm.group("value")
                    .replace("\\n", "\n")
                    .replace('\\"', '"')
                    .replace("\\\\", "\\")
                )
                labels.append((pm.group("key"), value))
                consumed += len(pm.group(0))
            leftovers = raw.replace(",", "")
            if consumed < len(leftovers):
                raise MetricsError(
                    f"unparseable labels on line {lineno}: {raw!r}"
                )
        try:
            if m.group("value") == "+Inf":
                value_f = math.inf
            elif m.group("value") == "-Inf":
                value_f = -math.inf
            else:
                value_f = float(m.group("value"))
        except ValueError:
            raise MetricsError(
                f"bad sample value on line {lineno}: {line!r}"
            ) from None
        key = (m.group("name"), tuple(sorted(labels)))
        if key in out:
            raise MetricsError(f"duplicate sample on line {lineno}: {line!r}")
        out[key] = value_f
    return out
