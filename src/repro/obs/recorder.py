"""The observability hub: one facade the instrumented layers talk to.

Instrumentation sites (simulator, device, SMs, CTA contexts, runtime
engine) never touch metric families or spans directly — they call the
typed hooks on an :class:`Observability` hub, which maintains the
metrics catalog and the span model in one place. Uninstrumented runs use
the module-level :data:`NULL_OBS` singleton, a :class:`NullObservability`
whose hooks are all no-ops; hot paths additionally guard with the
``enabled`` class attribute so a disabled run pays a single attribute
check per site (asserted <5% end-to-end by
``benchmarks/test_obs_overhead.py``).

A hub can also be installed process-globally (``install_global``):
:class:`~repro.core.flep.FlepSystem` picks the global hub up by default,
which is how ``flep stats`` aggregates metrics across every simulation
an experiment runs without threading a registry through the harness.

Span model (exported via ``tracer.chrome_trace()``):

* one ``invocation`` span per intercepted kernel invocation, on its own
  named track inside its submitting process;
* ``wait`` / ``execute`` / ``resume`` segments inside it, following the
  tracker's (Figure 5) state machine;
* a ``drain`` sub-span from each temporal preemption request to the
  drain completing, nested inside the running segment;
* a ``spatial_yield`` sub-span while the victim cedes SMs to a guest;
* instant markers for preemption requests and counter tracks for queue
  depth and CTA residency.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Dict, Optional, Tuple

from .metrics import MetricsRegistry
from .tracer import Span, SpanTracer

#: Wider buckets (µs) for end-to-end invocation times.
TURNAROUND_US_BUCKETS: Tuple[float, ...] = (
    100.0, 500.0, 1_000.0, 5_000.0, 10_000.0, 50_000.0,
    100_000.0, 500_000.0, 1_000_000.0, 5_000_000.0,
)


class Observability:
    """Live hub: a metrics registry plus a span tracer."""

    #: Hot paths check this before calling any hook.
    enabled = True

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self.metrics = MetricsRegistry()
        self.tracer = SpanTracer(clock if clock is not None else lambda: 0.0)
        self._register_catalog()
        #: per-invocation open spans: inv_id -> {"inv": .., "seg": ..,
        #: "drain": .., "spatial": ..}
        self._inv_spans: Dict[int, Dict[str, Span]] = {}
        self._resident_ctas = 0

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Point the span tracer at a (new) simulation clock.

        A hub installed globally before any system exists starts on a
        zero clock; each FlepSystem that adopts it re-binds the tracer to
        its own simulator so span timestamps are meaningful."""
        self.tracer._clock = clock

    # ------------------------------------------------------------------
    # catalog
    # ------------------------------------------------------------------
    def _register_catalog(self) -> None:
        m = self.metrics
        self.m_sim_events = m.counter(
            "flep_sim_events_total",
            "discrete events executed by the simulator, by event kind",
            ("kind",),
        )
        self.m_launches = m.counter(
            "flep_kernel_launches_total",
            "kernel-launch commands sent to the device, by kernel image",
            ("kernel",),
        )
        self.m_relaunches = m.counter(
            "flep_kernel_relaunches_total",
            "grids relaunched by the runtime (resume after a temporal "
            "preemption, or top-up after a spatial guest left)",
            ("reason",),
        )
        self.m_cta_admissions = m.counter(
            "flep_cta_admissions_total",
            "CTA contexts admitted onto SMs",
        )
        self.m_sm_resident = m.gauge(
            "flep_sm_resident_ctas",
            "CTA contexts currently resident, per SM",
            ("sm",),
        )
        self.m_hw_queue = m.gauge(
            "flep_hw_queue_depth",
            "grids in the device-wide hardware FIFO",
        )
        self.m_task_pulls = m.counter(
            "flep_task_pulls_total",
            "tasks pulled from persistent-kernel task pools",
        )
        self.m_flag_polls = m.counter(
            "flep_flag_polls_total",
            "pinned-memory preemption-flag polls performed by CTAs",
        )
        self.m_preempt_req = m.counter(
            "flep_preemptions_requested_total",
            "preemption requests issued by the scheduler, by kind",
            ("kind",),
        )
        self.m_preempt_done = m.counter(
            "flep_preemptions_completed_total",
            "preemptions that finished (temporal: drained; spatial: "
            "victim topped back up), by kind",
            ("kind",),
        )
        self.m_drain = m.histogram(
            "flep_drain_latency_us",
            "request-to-fully-yielded drain latency of temporal "
            "preemptions (µs)",
        )
        self.m_pred_err = m.histogram(
            "flep_predictor_abs_error_us",
            "absolute error |T_e - measured GPU time| of the duration "
            "predictor at invocation completion (µs)",
        )
        self.m_invocations = m.counter(
            "flep_invocations_total",
            "kernel invocations intercepted by the runtime",
        )
        self.m_finished = m.counter(
            "flep_invocations_finished_total",
            "kernel invocations that ran to completion",
        )
        self.m_queue_depth = m.gauge(
            "flep_queue_depth",
            "invocations waiting in the scheduling policy's queues",
            ("policy",),
        )
        self.m_wait = m.histogram(
            "flep_invocation_wait_us",
            "accumulated scheduler wait T_w at completion (µs)",
            buckets=TURNAROUND_US_BUCKETS,
        )
        self.m_turnaround = m.histogram(
            "flep_invocation_turnaround_us",
            "arrival-to-completion turnaround (µs)",
            buckets=TURNAROUND_US_BUCKETS,
        )

    # ------------------------------------------------------------------
    # simulator / device hooks (hot paths: call only when ``enabled``)
    # ------------------------------------------------------------------
    @staticmethod
    def _event_kind(label: str) -> str:
        """Collapse event labels to a bounded-cardinality kind:
        ``"NN__flep/ctx3/batch" -> "batch"``, ``"launch:NN" -> "launch"``."""
        if not label:
            return "unlabelled"
        return label.rsplit("/", 1)[-1].split(":", 1)[0]

    def sim_event(self, label: str) -> None:
        self.m_sim_events.inc(kind=self._event_kind(label))

    def kernel_launched(self, kernel_name: str) -> None:
        self.m_launches.inc(kernel=kernel_name)

    def kernel_relaunched(self, reason: str) -> None:
        self.m_relaunches.inc(reason=reason)

    def hw_queue_depth(self, depth: int) -> None:
        self.m_hw_queue.set(depth)
        self.tracer.counter("hw_queue_depth", process="device", grids=depth)

    def sm_admitted(self, sm_id: int, resident: int) -> None:
        self.m_cta_admissions.inc()
        self.m_sm_resident.set(resident, sm=str(sm_id))
        self._resident_ctas += 1
        self.tracer.counter(
            "resident_ctas", process="device", ctas=self._resident_ctas
        )

    def sm_released(self, sm_id: int, resident: int) -> None:
        self.m_sm_resident.set(resident, sm=str(sm_id))
        self._resident_ctas -= 1
        self.tracer.counter(
            "resident_ctas", process="device", ctas=self._resident_ctas
        )

    def tasks_pulled(self, n: int) -> None:
        self.m_task_pulls.inc(n)

    def flag_polled(self, n: int = 1) -> None:
        if n:
            self.m_flag_polls.inc(n)

    # ------------------------------------------------------------------
    # runtime-engine hooks (invocation lifecycle -> spans + metrics)
    # ------------------------------------------------------------------
    def _state(self, inv_id: int) -> Dict[str, Span]:
        return self._inv_spans.setdefault(inv_id, {})

    def inv_arrived(self, inv) -> None:
        self.m_invocations.inc()
        state = self._state(inv.inv_id)
        label = f"{inv.kspec.name}[{inv.inp.name}]"
        self.tracer.name_track(
            inv.process, inv.inv_id, f"inv#{inv.inv_id} {label}"
        )
        state["inv"] = self.tracer.begin(
            label,
            cat="invocation",
            process=inv.process,
            track=inv.inv_id,
            priority=inv.priority,
            predicted_us=inv.record.predicted_us,
        )
        state["seg"] = self.tracer.begin(
            "wait", cat="segment", process=inv.process, track=inv.inv_id
        )

    def inv_scheduled(self, inv, resumed: bool) -> None:
        state = self._state(inv.inv_id)
        self._end_segment(state)
        name = "resume" if resumed else "execute"
        state["seg"] = self.tracer.begin(
            name, cat="segment", process=inv.process, track=inv.inv_id
        )
        if resumed:
            self.kernel_relaunched("resume")

    def inv_preempt_requested(self, inv, kind: str, yield_sms: int) -> None:
        self.m_preempt_req.inc(kind=kind)
        self.tracer.instant(
            f"preempt_{kind}",
            cat="preempt",
            process=inv.process,
            track=inv.inv_id,
            yield_sms=yield_sms,
        )
        state = self._state(inv.inv_id)
        if kind == "temporal":
            if "drain" not in state:
                state["drain"] = self.tracer.begin(
                    "drain",
                    cat="preempt",
                    process=inv.process,
                    track=inv.inv_id,
                    yield_sms=yield_sms,
                )
        elif "spatial" not in state:
            state["spatial"] = self.tracer.begin(
                "spatial_yield",
                cat="preempt",
                process=inv.process,
                track=inv.inv_id,
                yield_sms=yield_sms,
            )

    def inv_drained(self, inv, latency_us: Optional[float]) -> None:
        self.m_preempt_done.inc(kind="temporal")
        if latency_us is not None:
            self.m_drain.observe(latency_us)
        state = self._state(inv.inv_id)
        drain = state.pop("drain", None)
        if drain is not None:
            self.tracer.end(drain, latency_us=latency_us)
        self._end_segment(state)
        state["seg"] = self.tracer.begin(
            "wait", cat="segment", process=inv.process, track=inv.inv_id
        )

    def inv_topped_up(self, inv) -> None:
        """A spatial guest left; the victim reclaimed its SMs."""
        self.m_preempt_done.inc(kind="spatial")
        self.kernel_relaunched("top_up")
        state = self._state(inv.inv_id)
        spatial = state.pop("spatial", None)
        if spatial is not None:
            self.tracer.end(spatial)

    def inv_finished(self, inv) -> None:
        self.m_finished.inc()
        record = inv.record
        err = abs(record.predicted_us - record.gpu_time_us)
        self.m_pred_err.observe(err)
        self.m_wait.observe(record.waited_us)
        if record.turnaround_us is not None:
            self.m_turnaround.observe(record.turnaround_us)
        state = self._inv_spans.pop(inv.inv_id, {})
        for key in ("drain", "spatial", "seg"):
            span = state.pop(key, None)
            if span is not None:
                self.tracer.end(span)
        outer = state.pop("inv", None)
        if outer is not None:
            self.tracer.end(
                outer,
                waited_us=record.waited_us,
                preemptions=record.preemptions,
                predictor_abs_error_us=err,
            )

    def queue_depth(self, policy_name: str, depth: int) -> None:
        self.m_queue_depth.set(depth, policy=policy_name)
        self.tracer.counter(
            "policy_queue_depth", process="scheduler", waiting=depth
        )

    def _end_segment(self, state: Dict[str, Span]) -> None:
        seg = state.pop("seg", None)
        if seg is not None:
            self.tracer.end(seg)

    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Close any spans left open (end of a run / horizon cut)."""
        self._inv_spans.clear()
        self.tracer.close_open()


class NullObservability(Observability):
    """The default recorder: every hook is a no-op.

    It still owns (empty) metrics/tracer objects so accidental access in
    cold paths never crashes, but nothing is ever recorded.
    """

    enabled = False

    def sim_event(self, label):  # noqa: D102 - no-op hooks
        pass

    def kernel_launched(self, kernel_name):
        pass

    def kernel_relaunched(self, reason):
        pass

    def hw_queue_depth(self, depth):
        pass

    def sm_admitted(self, sm_id, resident):
        pass

    def sm_released(self, sm_id, resident):
        pass

    def tasks_pulled(self, n):
        pass

    def flag_polled(self, n=1):
        pass

    def inv_arrived(self, inv):
        pass

    def inv_scheduled(self, inv, resumed):
        pass

    def inv_preempt_requested(self, inv, kind, yield_sms):
        pass

    def inv_drained(self, inv, latency_us):
        pass

    def inv_topped_up(self, inv):
        pass

    def inv_finished(self, inv):
        pass

    def queue_depth(self, policy_name, depth):
        pass

    def bind_clock(self, clock):
        pass

    def finalize(self):
        pass


#: Shared no-op recorder used as the default everywhere.
NULL_OBS = NullObservability()

# ---------------------------------------------------------------------------
# process-global hub (how `flep stats` observes whole experiments)
# ---------------------------------------------------------------------------
_GLOBAL: Optional[Observability] = None


def install_global(hub: Observability) -> Observability:
    """Make ``hub`` the default recorder for new FlepSystem instances."""
    global _GLOBAL
    _GLOBAL = hub
    return hub


def uninstall_global() -> None:
    """Remove the process-global hub (new systems go back to null)."""
    global _GLOBAL
    _GLOBAL = None


def get_global() -> Optional[Observability]:
    """The currently installed process-global hub, if any."""
    return _GLOBAL


@contextmanager
def observed(hub: Optional[Observability] = None):
    """Context manager: install a hub globally for the duration.

        with observed() as hub:
            EXPERIMENTS["fig8"].run()
        print(hub.metrics.format_summary())
    """
    hub = hub if hub is not None else Observability()
    install_global(hub)
    try:
        yield hub
    finally:
        uninstall_global()
