"""`flep bench`: the deterministic macro-benchmark suite.

FLEP's argument is about overhead, so the reproduction must be able to
measure *itself*: this module runs a fixed set of simulator workloads
under the :mod:`~repro.obs.profiler` and reports the two headline
numbers every ROADMAP speed item is judged by — **events/sec** (how fast
the discrete-event core turns) and **simulated-seconds per wall-second**
(how much GPU time one CPU second buys). Results are written as
schema-versioned ``BENCH_<date>_<git-sha>.json`` files, forming the
repo's tracked performance trajectory; ``flep bench --compare OLD.json``
diffs two snapshots and exits nonzero on a >15 % regression.

Scenarios (all seeded, so the simulated *workload* — event counts, task
pulls, preemptions — is bit-identical between runs; only wall time
varies with the machine):

* ``serving_sweep`` — the multi-tenant serving stack under Poisson load
  at two offered rates (flep-spatial + EDF + admission);
* ``fig8_mix`` — canonical high-priority-first co-run pairs, the shape
  behind Figure 8's temporal preemptions;
* ``preempt_storm`` — one long batch kernel preempted by a train of
  short high-priority arrivals (drain mechanics dominated);
* ``fuzz_stress`` — seeded cases from the conformance fuzzer's
  generator, replayed without monitors (mixed modes and policies);
* ``fleet_sweep`` — a heterogeneous three-node fleet (spatial /
  temporal / MPS) under Poisson load with deadline routing and work
  stealing: the multi-simulator co-simulation path.

The workload sizes scale with ``--budget`` (``small`` for CI smoke,
``default`` for the tracked trajectory, ``large`` for profiling
sessions). Heavy subsystem imports stay inside the scenario bodies so
``repro.obs`` remains importable from the simulator core.
"""

from __future__ import annotations

import json
import platform
import subprocess
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..errors import ObservabilityError
from .profiler import SimProfiler, profiled

#: Current report schema. v2 added the per-scenario ``schedule_hash``
#: (crc32 over the kernel-level timeline, combined across devices) and
#: re-keyed the drift gate to it; v1 files are still readable — their
#: hash rows compare as ``no-baseline``.
BENCH_SCHEMA = "flep-bench/2"

#: Schemas :meth:`BenchReport.from_dict` accepts.
COMPAT_SCHEMAS = ("flep-bench/1", "flep-bench/2")

#: Workload scale factors per budget tier.
BUDGETS: Dict[str, float] = {"small": 0.5, "default": 1.0, "large": 3.0}

#: Relative drop in a gated metric that counts as a regression.
DEFAULT_REGRESSION_THRESHOLD = 0.15

#: Metrics compared between reports; all are higher-is-better rates.
GATED_METRICS = ("events_per_sec", "sim_us_per_wall_s")


# ---------------------------------------------------------------------------
# scenarios
# ---------------------------------------------------------------------------
def _scenario_serving_sweep(scale: float) -> Dict[str, object]:
    """Multi-tenant serving under Poisson load at two offered rates."""
    from ..serving import (
        PoissonLoadGen,
        ServingConfig,
        ServingSystem,
        Tenant,
        TenantSet,
    )

    requests = completed = 0
    for rate in (0.1, 0.25):
        tenants = TenantSet([
            Tenant("batch", priority=0),
            Tenant("interactive", priority=1, slo_us=2_000.0),
        ])
        server = ServingSystem(
            tenants,
            ServingConfig(
                mode="flep-spatial", policy="edf", seed=11,
                oracle_model=True,
            ),
        )
        server.submit_at(0.0, "batch", "VA", "large")
        server.add_generator(PoissonLoadGen(
            tenant="interactive",
            kernels=("SPMV", "MM", "PL"),
            rate_per_ms=rate,
            duration_ms=10.0 * scale,
            seed=11,
            input_names=("trivial",),
            priority=1,
        ))
        report = server.run()
        for row in report.tenants:
            requests += row.requests
            completed += row.completed
    return {"requests": requests, "completed": completed}


def _scenario_fig8_mix(scale: float) -> Dict[str, object]:
    """Figure-8-shaped HPF co-runs: low-priority large kernels preempted
    by high-priority small followers."""
    from ..core.flep import FlepSystem
    from ..runtime.engine import RuntimeConfig

    pairs = [("NN", "SPMV"), ("CFD", "MM"), ("PF", "PL"), ("MD", "VA")]
    repeats = max(1, round(scale))
    finished = 0
    for _ in range(repeats):
        for low, high in pairs:
            system = FlepSystem(
                policy="hpf", config=RuntimeConfig(oracle_model=True)
            )
            system.submit_at(0.0, f"low_{low}", low, "large", priority=0)
            system.submit_at(10.0, f"high_{high}", high, "small", priority=1)
            result = system.run()
            finished += sum(1 for inv in result.invocations if inv.finished)
    return {"co_runs": repeats * len(pairs), "invocations": finished}


def _scenario_preempt_storm(scale: float) -> Dict[str, object]:
    """One long batch kernel vs a train of short high-priority arrivals:
    temporal preemption mechanics dominate the event mix."""
    from ..core.flep import FlepSystem
    from ..runtime.engine import RuntimeConfig

    n_bursts = max(2, round(8 * scale))
    system = FlepSystem(
        policy="hpf",
        config=RuntimeConfig(oracle_model=True, spatial_enabled=False),
    )
    system.submit_at(0.0, "batch", "NN", "large", priority=0)
    for i in range(n_bursts):
        system.submit_at(
            200.0 + 2_500.0 * i, f"rt{i}", "SPMV", "trivial", priority=1
        )
    result = system.run()
    preemptions = sum(inv.record.preemptions for inv in result.invocations)
    return {"bursts": n_bursts, "preemptions": preemptions}


def _scenario_fuzz_stress(scale: float) -> Dict[str, object]:
    """Seeded cases from the fuzzer's generator (mixed modes/policies),
    replayed without monitors or oracles — raw simulator churn."""
    from ..baselines.mps_corun import MPSCoRun
    from ..core.flep import FlepSystem
    from ..runtime.engine import RuntimeConfig
    from ..validate.fuzz import generate_case

    n_cases = max(4, round(12 * scale))
    invocations = 0
    for seed in range(n_cases):
        case = generate_case(seed)
        if case.mode == "mps":
            target = MPSCoRun()
            for i, job in enumerate(case.jobs):
                target.submit_at(
                    job.arrival_us, f"job{i}", job.kernel, job.input_name
                )
        else:
            target = FlepSystem(
                policy=case.policy,
                config=RuntimeConfig(
                    oracle_model=True,
                    spatial_enabled=(case.mode == "flep-spatial"),
                ),
            )
            for i, job in enumerate(case.jobs):
                target.submit_at(
                    job.arrival_us, f"job{i}", job.kernel, job.input_name,
                    priority=job.priority,
                )
        result = target.run()
        invocations += len(result.invocations)
    return {"cases": n_cases, "invocations": invocations}


def _scenario_fleet_sweep(scale: float) -> Dict[str, object]:
    """A small heterogeneous fleet under Poisson load: co-simulated
    multi-GPU dispatch, deadline routing and work stealing."""
    from ..fleet import FleetConfig, FleetSystem
    from ..serving import PoissonLoadGen, Tenant

    tenants = [
        Tenant("web", priority=2, slo_us=3_000.0),
        Tenant("analytics", priority=1, slo_us=25_000.0),
        Tenant("batch", priority=0),
    ]
    fleet = FleetSystem(tenants, FleetConfig(
        node_modes=("flep-spatial", "flep-temporal", "mps"),
        routing="deadline", oracle_model=True, seed=11,
    ))
    duration = 40.0 * scale
    fleet.add_generator(PoissonLoadGen(
        tenant="web", kernels=("SPMV", "MM", "PL"), rate_per_ms=1.5,
        duration_ms=duration, seed=11, input_names=("trivial",),
        priority=2,
    ))
    fleet.add_generator(PoissonLoadGen(
        tenant="analytics", kernels=("SPMV", "MM"), rate_per_ms=0.4,
        duration_ms=duration, seed=12, input_names=("small",),
        priority=1,
    ))
    fleet.add_generator(PoissonLoadGen(
        tenant="batch", kernels=("VA", "NN"), rate_per_ms=0.05,
        duration_ms=duration, seed=13, input_names=("large",),
        priority=0,
    ))
    report = fleet.run()
    return {
        "requests": sum(t.requests for t in report.serving.tenants),
        "steals": len(report.steals),
    }


@dataclass(frozen=True)
class BenchScenario:
    """One named macro-benchmark workload."""

    name: str
    run: Callable[[float], Dict[str, object]]
    description: str


SCENARIOS: Dict[str, BenchScenario] = {
    s.name: s
    for s in (
        BenchScenario(
            "serving_sweep", _scenario_serving_sweep,
            "multi-tenant serving under Poisson load (flep-spatial, EDF)",
        ),
        BenchScenario(
            "fig8_mix", _scenario_fig8_mix,
            "HPF co-run pairs (Figure 8's temporal-preemption shape)",
        ),
        BenchScenario(
            "preempt_storm", _scenario_preempt_storm,
            "long batch kernel preempted by a burst train (drain-heavy)",
        ),
        BenchScenario(
            "fuzz_stress", _scenario_fuzz_stress,
            "seeded fuzz-generator cases without monitors (mixed modes)",
        ),
        BenchScenario(
            "fleet_sweep", _scenario_fleet_sweep,
            "heterogeneous 3-node fleet, deadline routing + work stealing",
        ),
    )
}


# ---------------------------------------------------------------------------
# report model
# ---------------------------------------------------------------------------
@dataclass
class BenchReport:
    """One bench run: environment stamp plus per-scenario measurements."""

    budget: str
    created: str
    git_sha: str
    python: str
    scenarios: List[Dict[str, object]] = field(default_factory=list)
    schema: str = BENCH_SCHEMA

    def scenario(self, name: str) -> Dict[str, object]:
        """The named scenario's measurement dict."""
        for row in self.scenarios:
            if row["name"] == name:
                return row
        raise ObservabilityError(f"no scenario {name!r} in this report")

    def as_dict(self) -> Dict[str, object]:
        """Plain-data view, exactly what lands in ``BENCH_*.json``."""
        return {
            "schema": self.schema,
            "budget": self.budget,
            "created": self.created,
            "git_sha": self.git_sha,
            "python": self.python,
            "scenarios": [dict(s) for s in self.scenarios],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "BenchReport":
        """Parse a loaded JSON document, validating the schema stamp."""
        schema = data.get("schema")
        if schema not in COMPAT_SCHEMAS:
            raise ObservabilityError(
                f"unsupported bench schema {schema!r} "
                f"(this build reads {', '.join(map(repr, COMPAT_SCHEMAS))})"
            )
        return cls(
            budget=str(data.get("budget", "")),
            created=str(data.get("created", "")),
            git_sha=str(data.get("git_sha", "")),
            python=str(data.get("python", "")),
            scenarios=[dict(s) for s in data.get("scenarios", [])],
            schema=schema,
        )

    def write(self, path: str) -> None:
        """Serialize to ``path`` as indented JSON."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.as_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    def format(self) -> str:
        """Human-readable per-scenario table."""
        header = (
            f"{'scenario':16s} {'events':>10s} {'wall_s':>8s} "
            f"{'events/s':>12s} {'sim-s/wall-s':>12s} {'peak_q':>7s} "
            f"{'sched_hash':>10s}"
        )
        lines = [
            f"flep bench [{self.budget}] @ {self.git_sha} ({self.created})",
            header,
            "-" * len(header),
        ]
        for s in self.scenarios:
            lines.append(
                f"{s['name']:16s} {s['events']:10d} {s['wall_s']:8.3f} "
                f"{s['events_per_sec']:12,.0f} "
                f"{s['sim_us_per_wall_s'] / 1e6:12.3f} "
                f"{s['peak_queue_depth']:7d} "
                f"{str(s.get('schedule_hash', '-')):>10s}"
            )
        return "\n".join(lines)


def load_bench_report(path: str) -> BenchReport:
    """Load and schema-check a ``BENCH_*.json`` file."""
    with open(path, "r", encoding="utf-8") as fh:
        return BenchReport.from_dict(json.load(fh))


def git_sha(short: bool = True) -> str:
    """The current git commit (short) hash, or ``"unknown"``."""
    cmd = ["git", "rev-parse", "--short" if short else "--verify", "HEAD"]
    try:
        out = subprocess.run(
            cmd, capture_output=True, text=True, timeout=10, check=True
        )
        return out.stdout.strip() or "unknown"
    except Exception:  # noqa: BLE001 - environment probe, never fatal
        return "unknown"


def default_bench_filename(report: BenchReport) -> str:
    """``BENCH_<yyyymmdd>_<sha>.json`` — the tracked-trajectory name."""
    date = report.created.split("T", 1)[0].replace("-", "")
    return f"BENCH_{date}_{report.git_sha}.json"


# ---------------------------------------------------------------------------
# runner
# ---------------------------------------------------------------------------
def run_bench(
    budget: str = "default",
    only: Optional[Sequence[str]] = None,
    scenarios: Optional[Dict[str, BenchScenario]] = None,
    on_progress: Optional[Callable[[str, Dict[str, object]], None]] = None,
    warmup: bool = True,
) -> BenchReport:
    """Execute the suite under a fresh profiler per scenario.

    ``only`` selects a subset by name; ``scenarios`` swaps the whole
    table (the tests inject tiny synthetic workloads this way).

    ``warmup`` (default on) executes each scenario once, unmeasured, at
    the CI-smoke scale before the profiled run: scenario functions
    import their subsystems lazily, and in a cold process that one-time
    import/bytecode cost lands inside the first timed window, deflating
    ``events_per_sec`` by a large factor on the smaller scenarios. The
    metric is meant to track the *engine*, so imports and the
    process-wide memo caches are warmed outside the timed window.
    Schedules are unaffected (runs are bit-deterministic at a budget).
    """
    if budget not in BUDGETS:
        raise ObservabilityError(
            f"unknown budget {budget!r} (have {sorted(BUDGETS)})"
        )
    scale = BUDGETS[budget]
    table = scenarios if scenarios is not None else SCENARIOS
    names = list(only) if only else list(table)
    unknown = [n for n in names if n not in table]
    if unknown:
        raise ObservabilityError(
            f"unknown scenarios {unknown} (have {sorted(table)})"
        )
    report = BenchReport(
        budget=budget,
        created=time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        git_sha=git_sha(),
        python=platform.python_version(),
    )
    warm_scale = min(scale, BUDGETS["small"])
    # lazy: keep repro.obs importable without dragging in repro.gpu
    from ..gpu.trace import collected_schedule_hashes, combined_schedule_hash

    for name in names:
        if warmup:
            table[name].run(warm_scale)
        prof = SimProfiler()
        # every device built by the scenario registers its always-on
        # O(1)-memory digest here; hashing adds nothing to the timed
        # window beyond the fold the device performs anyway
        with collected_schedule_hashes() as scheds, profiled(prof):
            extras = table[name].run(scale) or {}
        row: Dict[str, object] = {
            "name": name,
            "description": table[name].description,
            "schedule_hash": combined_schedule_hash(
                [s.hexdigest for s in scheds]
            ),
            **prof.engine_block(),
            "extras": dict(extras),
            "profile": {
                "events_by_kind": dict(sorted(prof.events_by_kind.items())),
                "task_pulls": prof.task_pulls,
                "flag_polls": prof.flag_polls,
                "cta_admissions": prof.cta_admissions,
                "preempt_requested": dict(
                    sorted(prof.preempt_requested.items())
                ),
                "preempt_latency_us": {
                    kind: stat.as_dict()
                    for kind, stat in sorted(prof.latency.items())
                    if stat.count
                },
            },
        }
        report.scenarios.append(row)
        if on_progress is not None:
            on_progress(name, row)
    return report


# ---------------------------------------------------------------------------
# comparison (the regression gate)
# ---------------------------------------------------------------------------
@dataclass
class CompareResult:
    """Old-vs-new delta table plus the regression verdict."""

    threshold: float
    rows: List[Dict[str, object]] = field(default_factory=list)

    @property
    def regressions(self) -> List[Dict[str, object]]:
        """Rows whose gated metric dropped by more than the threshold."""
        return [r for r in self.rows if r["status"] == "regression"]

    @property
    def drifts(self) -> List[Dict[str, object]]:
        """Rows whose ``schedule_hash`` changed: the kernel-level
        timeline differs from the baseline's, which no amount of runner
        noise (or engine rework that honours the identity contract) can
        explain — schedules are bit-reproducible at a given budget.
        Event *counts* are engine-internal and may legitimately change
        (macro fast-forward collapses them); they compare as ``changed``,
        never ``drift``."""
        return [r for r in self.rows if r["status"] == "drift"]

    @property
    def ok(self) -> bool:
        """True when no gated metric regressed."""
        return not self.regressions

    def format(self) -> str:
        """Per-metric delta table (one row per scenario × metric)."""
        header = (
            f"{'scenario':16s} {'metric':18s} {'old':>12s} {'new':>12s} "
            f"{'delta':>8s}  status"
        )
        lines = [header, "-" * len(header)]
        for r in self.rows:
            old, new = r["old"], r["new"]
            delta = f"{100.0 * r['delta']:+.1f}%" if r["delta"] is not None \
                else "-"
            # schedule_hash rows carry hex digests, not rates
            old_s = old if isinstance(old, str) else f"{old:12,.0f}"
            new_s = new if isinstance(new, str) else f"{new:12,.0f}"
            lines.append(
                f"{r['scenario']:16s} {r['metric']:18s} "
                f"{old_s:>12s} {new_s:>12s} {delta:>8s}  {r['status']}"
            )
        verdict = (
            "OK: no gated metric regressed"
            if self.ok
            else f"REGRESSION: {len(self.regressions)} metric(s) dropped "
                 f">{100.0 * self.threshold:.0f}%"
        )
        lines.append(verdict)
        return "\n".join(lines)


def compare_reports(
    old: BenchReport,
    new: BenchReport,
    threshold: float = DEFAULT_REGRESSION_THRESHOLD,
) -> CompareResult:
    """Diff two bench reports scenario by scenario.

    Gated metrics (events/sec, sim-µs per wall-second) are
    higher-is-better rates: a relative drop beyond ``threshold`` marks
    the row ``regression``. Identity is gated on ``schedule_hash``: a
    mismatch means the kernel-level timeline changed (``drift``), which
    the identity contract forbids across engine rework. A baseline
    without hashes (a ``flep-bench/1`` file) yields ``no-baseline``.
    The ``events`` count is engine-internal — macro fast-forward
    legitimately collapses it — so a mismatch is reported as the
    informational ``changed``, never ``drift``; when the counts differ,
    ``events_per_sec`` measures a different workload decomposition and
    is likewise reported as ``changed`` instead of being gated.
    """
    if threshold <= 0:
        raise ObservabilityError("threshold must be positive")
    result = CompareResult(threshold=threshold)
    new_by_name = {s["name"]: s for s in new.scenarios}
    for old_row in old.scenarios:
        name = old_row["name"]
        new_row = new_by_name.get(name)
        if new_row is None:
            result.rows.append({
                "scenario": name, "metric": "-", "old": 0.0, "new": 0.0,
                "delta": None, "status": "missing-in-new",
            })
            continue
        old_hash = old_row.get("schedule_hash")
        new_hash = new_row.get("schedule_hash")
        if old_hash is None or new_hash is None:
            hash_status = "no-baseline"
        else:
            hash_status = "ok" if old_hash == new_hash else "drift"
        result.rows.append({
            "scenario": name,
            "metric": "schedule_hash",
            "old": str(old_hash or "-"),
            "new": str(new_hash or "-"),
            "delta": None,
            "status": hash_status,
        })
        old_events, new_events = old_row.get("events"), new_row.get("events")
        result.rows.append({
            "scenario": name,
            "metric": "events",
            "old": float(old_events or 0),
            "new": float(new_events or 0),
            "delta": None,
            "status": "ok" if old_events == new_events else "changed",
        })
        for metric in GATED_METRICS:
            old_v = float(old_row.get(metric) or 0.0)
            new_v = float(new_row.get(metric) or 0.0)
            if old_v <= 0.0:
                delta, status = None, "no-baseline"
            elif metric == "events_per_sec" and old_events != new_events:
                # a different event count means the rate measures a
                # different workload decomposition (macro fast-forward
                # collapses events); the comparison is informational
                delta = new_v / old_v - 1.0
                status = "changed"
            else:
                delta = new_v / old_v - 1.0
                if delta < -threshold:
                    status = "regression"
                elif delta > threshold:
                    status = "improved"
                else:
                    status = "ok"
            result.rows.append({
                "scenario": name, "metric": metric,
                "old": old_v, "new": new_v,
                "delta": delta, "status": status,
            })
    return result
