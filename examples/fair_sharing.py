#!/usr/bin/env python
"""Weighted fair sharing with FFS (§5.2.2, Figures 13/14).

Two tenants loop kernels on one GPU: a premium tenant (weight 2) running
SPMV queries and a standard tenant (weight 1) running the NN batch
kernel. FFS's weighted round-robin gives them 2/3 and 1/3 of the GPU,
with the quantum sized so preemption overhead stays under the
configurable budget.

Run:  python examples/fair_sharing.py
"""

from repro import FFSPolicy, FlepSystem
from repro.gpu.host import HostProgram

HORIZON_US = 40_000.0
MAX_OVERHEAD = 0.10


def main() -> None:
    policy = FFSPolicy(weights={1: 2.0, 0: 1.0}, max_overhead=MAX_OVERHEAD)
    system = FlepSystem(policy=policy)

    system.run_program(
        HostProgram.single_kernel(
            "standard", "NN", "large", priority=0, loop_forever=True
        ),
        start_at_us=0.0,
    )
    system.run_program(
        HostProgram.single_kernel(
            "premium", "SPMV", "small", priority=1, loop_forever=True
        ),
        start_at_us=10.0,
    )

    system.run(until=HORIZON_US)
    system.stop_all_loops()

    gpu_time = {0: 0.0, 1: 0.0}
    invocations = {0: 0, 1: 0}
    for inv in system.runtime.invocations:
        invocations[inv.priority] += 1
        for start, end in inv.record.run_segments:
            end = end if end > start else HORIZON_US
            gpu_time[inv.priority] += min(end, HORIZON_US) - start

    total = sum(gpu_time.values())
    print(f"horizon: {HORIZON_US / 1000:.0f} ms, weights premium:standard "
          f"= 2:1, max_overhead = {MAX_OVERHEAD:.0%}")
    print(f"FFS quantum T = {policy.quantum_us():.0f} us "
          f"(from sum(O_i) / (max_overhead * sum(W_i)))\n")
    for prio, label in ((1, "premium (w=2)"), (0, "standard (w=1)")):
        share = gpu_time[prio] / total
        print(f"{label:16s} GPU share = {share:5.1%}   "
              f"kernel invocations completed = {invocations[prio]}")
    print("\ntarget shares: 66.7% / 33.3% (Figure 13)")


if __name__ == "__main__":
    main()
