#!/usr/bin/env python
"""Cloud scenario (§2.2): a stream of short interactive queries sharing
one GPU with a long-running batch job.

A Poisson stream of micro queries (trivial inputs, ~5 SMs each) keeps
arriving while VA grinds through its large input. With FLEP the queries
preempt *spatially* — they take only the SMs they need, the batch job
keeps running on the other 10 — so query latency stays flat and the
batch job loses little throughput. We compare three executions:

  1. plain MPS            (queries wait for the batch kernel)
  2. FLEP, temporal-only  (whole-GPU yields per query)
  3. FLEP, spatial        (the paper's flexible preemption)

Run:  python examples/cloud_inference.py
"""

import statistics

from repro import FlepSystem, RuntimeConfig
from repro.baselines import MPSCoRun
from repro.workloads import poisson_trace

QUERY_KERNELS = ["SPMV", "MM", "PL"]
RATE_PER_MS = 0.20
HORIZON_MS = 25.0
SEED = 7


def trace():
    return poisson_trace(
        QUERY_KERNELS, rate_per_ms=RATE_PER_MS, duration_ms=HORIZON_MS,
        seed=SEED,
    ).sorted()


def run_mps():
    corun = MPSCoRun()
    corun.submit_at(0.0, "batch", "VA", "large")
    queries = [
        corun.submit_at(a.at_us, f"q{i}", a.kernel_name, "trivial")
        for i, a in enumerate(trace())
    ]
    result = corun.run()
    batch_end = result.of("batch")[0].finished_at
    return [q.turnaround_us for q in queries], batch_end


def run_flep(spatial: bool):
    system = FlepSystem(
        policy="hpf", config=RuntimeConfig(spatial_enabled=spatial)
    )
    system.submit_at(0.0, "batch", "VA", "large", priority=0)
    for i, a in enumerate(trace()):
        system.submit_at(a.at_us, f"q{i}", a.kernel_name, "trivial",
                         priority=1)
    result = system.run()
    queries = [
        inv.record.turnaround_us
        for inv in result.invocations
        if inv.process.startswith("q")
    ]
    batch_end = result.by_process("batch")[0].record.finished_at
    return queries, batch_end


def report(label, latencies, batch_end):
    lat_sorted = sorted(latencies)
    p95 = lat_sorted[int(0.95 * (len(lat_sorted) - 1))]
    print(f"{label:22s} queries={len(latencies):3d} "
          f"mean={statistics.mean(latencies):8.0f} us "
          f"p95={p95:8.0f} us "
          f"batch done at {batch_end / 1000.0:7.2f} ms")


def main() -> None:
    print(f"{len(trace())} queries over {HORIZON_MS:.0f} ms, "
          f"batch job = VA[large] (~31 ms alone)\n")
    report("plain MPS", *run_mps())
    report("FLEP temporal-only", *run_flep(spatial=False))
    report("FLEP spatial", *run_flep(spatial=True))
    print(
        "\nSpatial preemption keeps query latency low while costing the"
        "\nbatch job far less than whole-GPU yields (Figure 15's point)."
    )


if __name__ == "__main__":
    main()
