#!/usr/bin/env python
"""Cloud scenario (§2.2), served by the multi-tenant serving layer.

Two tenants share one GPU: ``batch`` grinds through VA[large] while
``interactive`` — a user-facing application with a 2 ms SLO — sends a
Poisson stream of trivial queries. The :class:`repro.serving`
subsystem handles the rest: SLO-aware admission control budgets each
query against the runtime's duration prediction, the EDF policy turns
deadlines into preemption decisions, and the SLO tracker reports
per-tenant percentiles, attainment and goodput. We serve the identical
trace under three modes:

  1. plain MPS            (queries wait for the batch kernel)
  2. FLEP, temporal-only  (whole-GPU yields per query)
  3. FLEP, spatial        (the paper's flexible preemption)

Run:  python examples/cloud_inference.py
"""

from repro.serving import (
    PoissonLoadGen,
    ServingConfig,
    ServingSystem,
    Tenant,
    TenantSet,
)

QUERY_KERNELS = ["SPMV", "MM", "PL"]
RATE_PER_MS = 0.20
HORIZON_MS = 25.0
SLO_US = 2_000.0
SEED = 7


def tenants() -> TenantSet:
    return TenantSet([
        Tenant("batch", priority=0),                       # best-effort
        Tenant("interactive", priority=1, slo_us=SLO_US),  # 2 ms SLO
    ])


def serve(mode: str):
    server = ServingSystem(
        tenants(), ServingConfig(mode=mode, policy="edf", seed=SEED)
    )
    server.submit_at(0.0, "batch", "VA", "large")
    server.add_generator(PoissonLoadGen(
        tenant="interactive", kernels=QUERY_KERNELS,
        rate_per_ms=RATE_PER_MS, duration_ms=HORIZON_MS, seed=SEED,
        input_names=("trivial",), priority=1,
    ))
    return server.run()


def main() -> None:
    print(f"Poisson queries at {RATE_PER_MS}/ms over {HORIZON_MS:.0f} ms "
          f"(SLO {SLO_US:.0f} us), batch job = VA[large] (~31 ms alone)\n")
    rows = {}
    for label, mode in [("plain MPS", "mps"),
                        ("FLEP temporal-only", "flep-temporal"),
                        ("FLEP spatial", "flep-spatial")]:
        report = serve(mode)
        rows[label] = report
        q = report.tenant("interactive")
        b = report.tenant("batch")
        attain = f"{100.0 * q.attainment:.0f}%" if q.attainment is not None else "-"
        print(f"{label:22s} queries={q.completed:3d}/{q.requests:3d} "
              f"p50={q.p50_us:8.0f} us  p99={q.p99_us:8.0f} us  "
              f"attainment={attain:>5s}  goodput={q.goodput_rps:6.1f}/s  "
              f"batch p50={b.p50_us / 1000.0:6.2f} ms")
    print("\nFull SLO report (FLEP spatial):")
    print(rows["FLEP spatial"].format())
    print(
        "\nSpatial preemption serves every query inside its SLO while"
        "\ncosting the batch tenant the least (Figure 15's point, as a"
        "\nserving-system statement)."
    )


if __name__ == "__main__":
    main()
