#!/usr/bin/env python
"""Spatial preemption in detail (§6.4, Figures 15 and 16).

A CFD batch job holds all 15 SMs when a micro kernel (16 CTAs) arrives
with high priority. We show:

  1. temporal vs spatial preemption cost for the batch job,
  2. the Figure-16 trade-off: yielding more SMs than the guest strictly
     needs speeds the guest up (less intra-SM contention) but preempts
     more of the victim.

Run:  python examples/spatial_preemption.py
"""

from repro import FlepSystem, RuntimeConfig
from repro.baselines import MPSCoRun
from repro.workloads import standard_suite
from repro.workloads.specs import InputSpec

GUEST, VICTIM = "NN", "CFD"
GUEST_CTAS = 16          # 2 SMs at 8 CTAs/SM
GUEST_CTA_US = 200.0     # long enough that contention dominates


def micro_input(suite):
    kspec = suite[GUEST]
    return InputSpec(
        name="micro",
        size=GUEST_CTAS * kspec.work_per_task,
        tasks=GUEST_CTAS,
        task_scale=GUEST_CTA_US / kspec.task_time_us,
    )


def run(suite, spatial: bool, force_width=None):
    config = RuntimeConfig(
        spatial_enabled=spatial, spatial_force_sms=force_width
    )
    system = FlepSystem(policy="hpf", suite=suite, config=config)
    system.submit_at(0.0, "batch", VICTIM, "large", priority=0)
    inp = micro_input(suite)
    system.sim.schedule_at(
        500.0,
        lambda: system.runtime.submit("guest", GUEST, priority=1, inp=inp),
    )
    result = system.run()
    guest = result.by_process("guest")[0]
    batch = result.by_process("batch")[0]
    dispatch = min(
        g.first_dispatch_at for g in guest.grids
        if g.first_dispatch_at is not None
    )
    return {
        "guest_exec_us": guest.record.finished_at - dispatch,
        "batch_done_us": batch.record.finished_at,
        "makespan_us": result.makespan_us,
    }


def main() -> None:
    suite = standard_suite()

    # reference: both under plain MPS (guest waits politely)
    mps = MPSCoRun(suite=suite)
    mps.submit_at(0.0, "batch", VICTIM, "large")
    mps.run()
    t_org = mps.sim.now

    temporal = run(suite, spatial=False)
    spatial = run(suite, spatial=True)

    print(f"victim = {VICTIM}[large] (~11.1 ms alone), guest = {GUEST} "
          f"micro kernel ({GUEST_CTAS} CTAs, needs 2 SMs)\n")
    print(f"{'mode':12s} {'guest exec':>12s} {'batch done':>12s}")
    print(f"{'temporal':12s} {temporal['guest_exec_us']:>10.0f}us "
          f"{temporal['batch_done_us'] / 1000:>10.2f}ms   "
          f"(whole GPU yielded; 13 SMs idle under the guest)")
    print(f"{'spatial':12s} {spatial['guest_exec_us']:>10.0f}us "
          f"{spatial['batch_done_us'] / 1000:>10.2f}ms   "
          f"(victim keeps running on the other SMs)")

    ovh_t = temporal["makespan_us"] - t_org
    ovh_s = spatial["makespan_us"] - t_org
    print(f"\npreemption overhead vs solo batch run: "
          f"temporal +{ovh_t:.0f}us, spatial +{ovh_s:.0f}us "
          f"({1 - ovh_s / ovh_t:.0%} reduction; Figure 15 reports up to 41%)")

    print("\nFigure 16 sweep: yield width vs guest execution time")
    base = None
    for width in (2, 4, 6, 8, 10, 12):
        r = run(suite, spatial=True, force_width=width)
        base = base or r["guest_exec_us"]
        print(f"  {width:>2d} SMs yielded: guest {r['guest_exec_us']:>7.0f}us"
              f"  (speedup {base / r['guest_exec_us']:.2f}x, "
              f"batch done {r['batch_done_us'] / 1000:.2f}ms)")
    print("\nthe paper's largest observed speedup was ~2.22x — yielding"
          "\nmore SMs helps the guest but costs the victim more")


if __name__ == "__main__":
    main()
