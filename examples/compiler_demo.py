#!/usr/bin/env python
"""The FLEP offline phase, end to end (§4.1, Figures 4 and 5).

Takes the bundled vector-addition program (the paper's 6-line kernel),
runs it through the compilation engine, and prints:

  * the three transformed kernel forms (temporal, amortized, spatial),
  * the rewritten host code with its Figure-5 wrapper,
  * the toy PTX whose linear scan yields the occupancy geometry,
  * the offline amortizing-factor tuning trace (Table 1's last column).

Run:  python examples/compiler_demo.py
"""

from repro.compiler import (
    CompilationEngine,
    TransformKind,
    emit_function,
    tune_amortizing_factor,
)
from repro.workloads import standard_suite
from repro.workloads.sources import source_of

BENCH = "VA"


def banner(title: str) -> None:
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    banner(f"original program ({BENCH})")
    print(source_of(BENCH).strip())

    engine = CompilationEngine()
    program = engine.compile_benchmark(BENCH)
    info = program.kernel("va_kernel")

    for kind, label in (
        (TransformKind.TEMPORAL, "Figure 4 (a): temporal preemption"),
        (TransformKind.TEMPORAL_AMORTIZED,
         "Figure 4 (b): amortized flag checks"),
        (TransformKind.SPATIAL, "Figure 4 (c): spatial preemption (%smid)"),
    ):
        banner(label)
        print(emit_function(info.transformed[kind].function))

    banner("Figure 5: the rewritten host side (wrapper excerpt)")
    for chunk in program.transformed_source.split("\n\n"):
        if chunk.startswith("void flep_invoke_va_kernel"):
            print(chunk)
            break

    banner("toy PTX + linear resource scan (§4.1)")
    print(info.ptx)
    occ = info.occupancy
    print(f"scan -> {occ.resources.regs_per_thread} regs/thread, "
          f"{occ.resources.shared_mem_per_cta} B shared")
    print(f"occupancy: {occ.max_ctas_per_sm} CTAs/SM "
          f"(limited by {occ.report.limiter}); persistent launch = "
          f"{occ.persistent_grid_ctas} CTAs")

    banner("offline amortizing-factor tuning (< 4% rule)")
    suite = standard_suite()
    result = tune_amortizing_factor(suite[BENCH])
    for l, overhead in result.trials:
        verdict = "PASS" if overhead < 0.04 else "fail"
        print(f"  L = {l:<5d} measured overhead = {overhead:6.2%}  {verdict}")
    print(f"chosen L = {result.chosen_l} "
          f"(Table 1 reports {suite.amortizing[BENCH]})")


if __name__ == "__main__":
    main()
