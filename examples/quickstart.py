#!/usr/bin/env python
"""Quickstart: eliminate priority inversion with FLEP.

A long batch kernel (NN on its large input) occupies the GPU; an
interactive query (SPMV, small input) arrives right after. Under plain
MPS the query waits ~16 ms behind the batch kernel. Under FLEP + HPF
the batch kernel is preempted at its next pinned-flag poll and the
query finishes in well under a millisecond.

Run:  python examples/quickstart.py
"""

from repro import FlepSystem
from repro.baselines import MPSCoRun


def main() -> None:
    # ------------------------------------------------------------------
    # baseline: plain MPS co-run (no preemption)
    # ------------------------------------------------------------------
    mps = MPSCoRun()
    mps.submit_at(0.0, "batch", "NN", "large")
    query_mps = mps.submit_at(10.0, "interactive", "SPMV", "small")
    mps.run()
    print(f"MPS baseline : query turnaround = "
          f"{query_mps.turnaround_us:>10.0f} us "
          f"(stuck behind the batch kernel)")

    # ------------------------------------------------------------------
    # FLEP with highest-priority-first scheduling
    # ------------------------------------------------------------------
    system = FlepSystem(policy="hpf")
    system.submit_at(0.0, "batch", "NN", "large", priority=0)
    system.submit_at(10.0, "interactive", "SPMV", "small", priority=1)
    result = system.run()

    query = result.by_process("interactive")[0]
    batch = result.by_process("batch")[0]
    print(f"FLEP (HPF)   : query turnaround = "
          f"{query.record.turnaround_us:>10.0f} us "
          f"(batch kernel preempted {batch.record.preemptions}x)")
    print(f"               batch kernel finished at "
          f"{batch.record.finished_at:.0f} us "
          f"(resumed after the query, only its remaining tasks re-run)")
    speedup = query_mps.turnaround_us / query.record.turnaround_us
    print(f"\nspeedup for the interactive query: {speedup:.1f}x "
          f"(the paper's Figure 8 band: 4.1x - 24.2x)")


if __name__ == "__main__":
    main()
